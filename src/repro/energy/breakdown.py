"""Fig. 10: area and power breakdown of HiHGNN + GDR-HGNN."""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import HiHGNNConfig
from repro.energy.area import (
    fifo_area_mm2,
    mac_array_area_mm2,
    simd_area_mm2,
    sram_area_mm2,
)
from repro.energy.power import (
    fifo_power_mw,
    leakage_mw,
    mac_array_power_mw,
    simd_power_mw,
    sram_power_mw,
)
from repro.energy.tech import TechNode, TSMC12
from repro.frontend.config import GDRConfig

__all__ = ["ComponentCost", "area_breakdown", "power_breakdown", "figure10_shares"]


@dataclass(frozen=True)
class ComponentCost:
    """One hardware component's cost entry."""

    block: str  # "hihgnn" or "gdr"
    component: str
    area_mm2: float
    power_mw: float


def _hihgnn_components(
    config: HiHGNNConfig, node: TechNode
) -> list[ComponentCost]:
    clock = config.clock_ghz
    macs = config.num_lanes * config.systolic_rows * config.systolic_cols
    simd_lanes = config.num_lanes * config.simd_width

    entries: list[tuple[str, float, float]] = []
    mac_area = mac_array_area_mm2(macs, node)
    entries.append(
        ("systolic array", mac_area, mac_array_power_mw(macs, 0.7, clock, node))
    )
    simd_area = simd_area_mm2(simd_lanes, node)
    entries.append(
        ("simd module", simd_area, simd_power_mw(simd_lanes, 0.5, clock, node))
    )
    for name, capacity, rate in (
        ("fp buffer", config.fp_buffer_bytes, 0.5),
        ("na buffer", config.na_buffer_bytes, 1.0),
        ("sf buffer", config.sf_buffer_bytes, 0.25),
        ("att buffer", config.att_buffer_bytes, 0.25),
    ):
        entries.append(
            (name, sram_area_mm2(capacity, node),
             sram_power_mw(capacity, rate, clock, node))
        )
    # Control, dispatcher, memory controller, NoC: a fixed share of the
    # datapath area (DC-synthesized "others" in Fig. 10).
    other_area = 0.12 * sum(a for _, a, _ in entries)
    entries.append(("others", other_area, other_area * 60.0))

    return [
        ComponentCost(
            block="hihgnn",
            component=name,
            area_mm2=area,
            power_mw=power + leakage_mw(area, node),
        )
        for name, area, power in entries
    ]


def _gdr_components(config: GDRConfig, node: TechNode) -> list[ComponentCost]:
    clock = config.clock_ghz
    # Decoupler state: hash table for FIFO allocation and the
    # visited/matching bitmaps (sized for 64 K-vertex graphs).
    hash_table_bytes = 32 * 1024
    bitmap_bytes = 16 * 1024
    entries = [
        ("fifos", fifo_area_mm2(config.fifo_bytes, node),
         fifo_power_mw(config.fifo_bytes, 6.0, clock, node)),
        ("matching buffer", sram_area_mm2(config.matching_buffer_bytes, node),
         sram_power_mw(config.matching_buffer_bytes, 1.0, clock, node)),
        ("candidate buffer", sram_area_mm2(config.candidate_buffer_bytes, node),
         sram_power_mw(config.candidate_buffer_bytes, 1.0, clock, node)),
        ("adj list buffer", sram_area_mm2(config.adj_buffer_bytes, node),
         sram_power_mw(config.adj_buffer_bytes, 2.0, clock, node)),
        ("hash table", sram_area_mm2(hash_table_bytes, node),
         sram_power_mw(hash_table_bytes, 2.0, clock, node)),
        ("bitmaps", sram_area_mm2(bitmap_bytes, node),
         sram_power_mw(bitmap_bytes, 2.0, clock, node)),
    ]
    # Backbone searcher, graph generator and control logic.
    logic_area = 0.30 * sum(a for _, a, _ in entries)
    entries.append(("logic", logic_area, logic_area * 120.0))
    return [
        ComponentCost(
            block="gdr",
            component=name,
            area_mm2=area,
            power_mw=power + leakage_mw(area, node),
        )
        for name, area, power in entries
    ]


def area_breakdown(
    accel: HiHGNNConfig | None = None,
    frontend: GDRConfig | None = None,
    node: TechNode = TSMC12,
) -> list[ComponentCost]:
    """Per-component area/power of the combined system."""
    accel = accel or HiHGNNConfig()
    frontend = frontend or GDRConfig()
    return _hihgnn_components(accel, node) + _gdr_components(frontend, node)


def power_breakdown(
    accel: HiHGNNConfig | None = None,
    frontend: GDRConfig | None = None,
    node: TechNode = TSMC12,
) -> list[ComponentCost]:
    """Alias of :func:`area_breakdown` (entries carry both metrics)."""
    return area_breakdown(accel, frontend, node)


def figure10_shares(
    accel: HiHGNNConfig | None = None,
    frontend: GDRConfig | None = None,
    node: TechNode = TSMC12,
) -> dict[str, float]:
    """Fig. 10's headline numbers.

    Returns:
        ``{"gdr_area_mm2", "gdr_area_share", "gdr_power_mw",
        "gdr_power_share", "total_area_mm2", "total_power_w",
        "gdr_fifo_area_share", "gdr_buffer_area_share"}`` where shares
        are fractions of the combined system (paper: GDR-HGNN is 2.30 %
        of area -- 0.50 mm^2 -- and 0.46 % of power -- 55.6 mW).
    """
    components = area_breakdown(accel, frontend, node)
    gdr = [c for c in components if c.block == "gdr"]
    total_area = sum(c.area_mm2 for c in components)
    total_power = sum(c.power_mw for c in components)
    gdr_area = sum(c.area_mm2 for c in gdr)
    gdr_power = sum(c.power_mw for c in gdr)
    gdr_fifo_area = sum(c.area_mm2 for c in gdr if c.component == "fifos")
    gdr_buffer_area = sum(c.area_mm2 for c in gdr if "buffer" in c.component)
    return {
        "gdr_area_mm2": gdr_area,
        "gdr_area_share": gdr_area / total_area,
        "gdr_power_mw": gdr_power,
        "gdr_power_share": gdr_power / total_power,
        "total_area_mm2": total_area,
        "total_power_w": total_power / 1e3,
        "gdr_fifo_area_share": gdr_fifo_area / gdr_area,
        "gdr_buffer_area_share": gdr_buffer_area / gdr_area,
    }
