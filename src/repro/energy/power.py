"""Component power models (mW at the configured node and clock)."""

from __future__ import annotations

import math

from repro.energy.tech import TechNode, TSMC12

__all__ = [
    "sram_power_mw",
    "fifo_power_mw",
    "mac_array_power_mw",
    "simd_power_mw",
    "leakage_mw",
]

KB = 1 << 10


def _sram_pj_per_access(capacity_bytes: int, node: TechNode) -> float:
    """Dynamic energy of one access; grows ~sqrt(capacity) (bitline length)."""
    kb = max(capacity_bytes / KB, 1.0)
    return node.sram_pj_per_access_per_kb * math.sqrt(kb)


def sram_power_mw(
    capacity_bytes: int,
    accesses_per_cycle: float,
    clock_ghz: float = 1.0,
    node: TechNode = TSMC12,
) -> float:
    """Dynamic power of an SRAM macro at a given access rate.

    ``pJ/access * accesses/s = mW`` (1 pJ * 1 GHz = 1 mW).
    """
    if accesses_per_cycle < 0 or clock_ghz <= 0:
        raise ValueError("rates must be non-negative, clock positive")
    return _sram_pj_per_access(capacity_bytes, node) * accesses_per_cycle * clock_ghz


def fifo_power_mw(
    capacity_bytes: int,
    accesses_per_cycle: float,
    clock_ghz: float = 1.0,
    node: TechNode = TSMC12,
) -> float:
    """FIFO dynamic power: SRAM access plus pointer toggling (~25 %)."""
    return sram_power_mw(capacity_bytes, accesses_per_cycle, clock_ghz, node) * 1.25


def mac_array_power_mw(
    num_macs: int,
    utilization: float = 0.7,
    clock_ghz: float = 1.0,
    node: TechNode = TSMC12,
) -> float:
    """MAC array dynamic power at a sustained utilization."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    flops_per_s = num_macs * 2 * utilization * clock_ghz  # GFLOP/s
    return flops_per_s * node.mac_pj_per_flop


def simd_power_mw(
    num_lanes: int,
    utilization: float = 0.5,
    clock_ghz: float = 1.0,
    node: TechNode = TSMC12,
) -> float:
    """SIMD module dynamic power (lanes cost ~1.6x a MAC per op)."""
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    ops_per_s = num_lanes * utilization * clock_ghz
    return ops_per_s * node.mac_pj_per_flop * 1.6


def leakage_mw(area_mm2: float, node: TechNode = TSMC12) -> float:
    """Static power of a block from its area."""
    if area_mm2 < 0:
        raise ValueError("area must be non-negative")
    return area_mm2 * node.leakage_mw_per_mm2
