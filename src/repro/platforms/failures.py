"""Typed per-cell failures and the retry policy that governs them.

The runner's error taxonomy:

- **Transient** failures (injected faults, OS-level I/O errors,
  timeouts) may be retried under a :class:`RetryPolicy` — exponential
  backoff with jitter derived deterministically from the run seed and
  the cell key, so two identical runs retry on identical schedules.
- **Permanent** failures (``ValueError``/``TypeError``/``KeyError``
  from validation, assertion errors) are never retried: re-running a
  misconfigured cell cannot change the outcome.
- Whatever remains after the last attempt is captured as a
  :class:`CellFailure` — cell key, exception class, message, full
  traceback string, attempt count and elapsed time — and surfaces as
  data (``on_error="collect"``) or re-raises (``on_error="raise"``).
"""

from __future__ import annotations

import hashlib
import traceback as traceback_module
from dataclasses import dataclass
from typing import Any

from repro.faults.errors import InjectedFault

__all__ = ["CellFailure", "RetryPolicy", "ArtifactBuildError"]

GridKey = tuple[str, str, str]

#: Exception classes a retry can plausibly cure.
TRANSIENT_EXCEPTIONS: tuple[type[BaseException], ...] = (
    InjectedFault,
    OSError,
    TimeoutError,
    ConnectionError,
)

#: Exception classes that are permanent by contract — validation and
#: programming errors — even when they also match a transient base.
PERMANENT_EXCEPTIONS: tuple[type[BaseException], ...] = (
    ValueError,
    TypeError,
    KeyError,
    AssertionError,
    NotImplementedError,
)


class ArtifactBuildError(RuntimeError):
    """Building one dataset's graph or topology artifacts failed.

    Raised by :meth:`GridRunner.warm_artifacts` so a pooled build
    names the offending dataset/scenario ref instead of surfacing an
    anonymous worker exception. The original exception is chained as
    ``__cause__`` (and consulted for transience classification).
    """

    def __init__(self, dataset: str, cause: BaseException):
        self.dataset = dataset
        super().__init__(
            f"building artifacts for dataset {dataset!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass(frozen=True)
class CellFailure:
    """One grid cell's terminal failure, as data.

    ``error_type`` is the exception's qualified class name,
    ``traceback`` the full formatted traceback string, ``attempts``
    how many times the cell ran (1 = no retries), ``elapsed_s`` the
    wall time spent across all attempts.
    """

    platform: str
    model: str
    dataset: str
    error_type: str
    message: str
    traceback: str
    attempts: int
    elapsed_s: float

    @property
    def key(self) -> GridKey:
        return (self.platform, self.model, self.dataset)

    @classmethod
    def from_exception(
        cls,
        key: GridKey,
        exc: BaseException,
        *,
        attempts: int = 1,
        elapsed_s: float = 0.0,
    ) -> "CellFailure":
        tp = type(exc)
        name = tp.__name__
        if tp.__module__ not in ("builtins", "__main__"):
            name = f"{tp.__module__}.{tp.__qualname__}"
        return cls(
            platform=key[0],
            model=key[1],
            dataset=key[2],
            error_type=name,
            message=str(exc),
            traceback="".join(
                traceback_module.format_exception(tp, exc, exc.__traceback__)
            ),
            attempts=int(attempts),
            elapsed_s=float(elapsed_s),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "platform": self.platform,
            "model": self.model,
            "dataset": self.dataset,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CellFailure":
        return cls(
            platform=str(payload["platform"]),
            model=str(payload["model"]),
            dataset=str(payload["dataset"]),
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            traceback=str(payload.get("traceback", "")),
            attempts=int(payload.get("attempts", 1)),
            elapsed_s=float(payload.get("elapsed_s", 0.0)),
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How (and whether) transient cell failures are retried.

    Attributes:
        max_attempts: total tries per cell (1 = no retries).
        base_delay_s: backoff before the first retry; each further
            retry multiplies it by ``backoff_factor`` up to
            ``max_delay_s``.
        backoff_factor: exponential growth factor.
        max_delay_s: backoff ceiling.
        jitter: fractional jitter added to each delay; the jitter
            value is a pure function of ``(seed, cell key, attempt)``
            so retry schedules are reproducible, never synchronized
            across cells.
    """

    max_attempts: int = 1
    base_delay_s: float = 0.0
    backoff_factor: float = 2.0
    max_delay_s: float = 1.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @staticmethod
    def is_transient(exc: BaseException) -> bool:
        """Whether a retry could plausibly cure ``exc``.

        Permanent classes win over transient bases (an ``OSError``
        subclass that is also a ``ValueError`` is permanent), and a
        wrapped :class:`ArtifactBuildError` is classified by its
        cause.
        """
        if isinstance(exc, ArtifactBuildError) and exc.__cause__ is not None:
            return RetryPolicy.is_transient(exc.__cause__)
        if isinstance(exc, PERMANENT_EXCEPTIONS):
            return False
        return isinstance(exc, TRANSIENT_EXCEPTIONS)

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (1-based) may be retried."""
        return attempt < self.max_attempts and self.is_transient(exc)

    def delay_s(self, attempt: int, *, seed: int = 0, token: str = "") -> float:
        """Backoff before retrying after attempt ``attempt`` (1-based).

        Deterministic: the jitter draw hashes ``(seed, token,
        attempt)``, so a rerun with the same seed sleeps the same
        schedule and distinct cells never thundering-herd in sync.
        """
        if self.base_delay_s == 0.0:
            return 0.0
        delay = min(
            self.base_delay_s * self.backoff_factor ** (attempt - 1),
            self.max_delay_s,
        )
        raw = int.from_bytes(
            hashlib.sha256(f"{seed}|{token}|{attempt}".encode()).digest()[:8],
            "big",
        )
        return delay * (1.0 + self.jitter * (raw / float(1 << 64)))
