"""Extensible execution platforms for the evaluation grid.

This package decouples *what* the evaluation runs (platforms named in
a registry) from *how* it runs (a parallel grid runner backed by a
persistent artifact store):

- :mod:`repro.platforms.base` -- the :class:`Platform` protocol
  (``prepare`` / ``simulate``) and the shared-topology artifact type.
- :mod:`repro.platforms.registry` -- ``@register_platform("name")``
  and lookup helpers. The four paper platforms register from the
  layers owning their simulators.
- :mod:`repro.platforms.runner` -- :class:`GridRunner`, the
  ``concurrent.futures`` executor of the platform x model x dataset
  grid.
- :mod:`repro.platforms.store` -- :class:`ArtifactStore`,
  content-addressed on-disk report caching keyed by platform, model,
  dataset, configuration digest and code version.
"""

from repro.platforms.base import DatasetArtifacts, Platform, PlatformContext
from repro.platforms.failures import (
    ArtifactBuildError,
    CellFailure,
    RetryPolicy,
)
from repro.platforms.registry import (
    create_platform,
    get_platform_class,
    platform_names,
    register_platform,
    unregister_platform,
)
from repro.platforms.runner import GridRunner
from repro.platforms.store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    StoreStats,
    config_digest,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "Platform",
    "PlatformContext",
    "DatasetArtifacts",
    "ArtifactBuildError",
    "CellFailure",
    "RetryPolicy",
    "register_platform",
    "unregister_platform",
    "create_platform",
    "get_platform_class",
    "platform_names",
    "GridRunner",
    "ArtifactStore",
    "StoreStats",
    "config_digest",
]
