"""Parallel, failure-isolating executor of the platform grid.

The runner owns everything the old ``EvaluationSuite.run`` hard-coded:

- dataset graphs and their shared :class:`DatasetArtifacts` (built once
  per dataset, warmed, then read-only — the precondition for fanning
  cells out across workers),
- platform instances resolved through the registry,
- an in-memory result memo plus an optional persistent
  :class:`~repro.platforms.store.ArtifactStore`,
- a ``concurrent.futures`` thread pool for ``jobs > 1``.

Workers share one address space, so topology artifacts and the replay
caches are shared rather than re-pickled per cell (a process pool
would re-pay the dominant cost — artifact construction — in every
worker). Simulations are deterministic pure functions of the warmed
artifacts, so parallel runs are bit-identical to serial ones.

Failure semantics
-----------------

One raising cell no longer aborts the fan-out. :meth:`GridRunner.run_cell`
applies an optional :class:`~repro.platforms.failures.RetryPolicy`
(transient errors only — injected faults and OS-level I/O errors,
never validation ``ValueError``), and with ``on_error="collect"``
captures the terminal exception as a typed
:class:`~repro.platforms.failures.CellFailure` instead of raising.
:meth:`GridRunner.run_grid` propagates the choice across the whole
grid: ``"raise"`` (default) keeps the historical fail-fast contract,
``"collect"`` returns failures as values next to the surviving
reports. Store I/O never fails a cell: a failed load is a miss, a
failed transient save forfeits only the cache write.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.faults import inject
from repro.graph.hetero import HeteroGraph
from repro.platforms.base import DatasetArtifacts, Platform, PlatformContext
from repro.platforms.failures import ArtifactBuildError, CellFailure, RetryPolicy
from repro.platforms.registry import create_platform
from repro.platforms.store import ArtifactStore, config_digest

__all__ = ["GridRunner"]

GridKey = tuple[str, str, str]

_ON_ERROR = ("raise", "collect")


class GridRunner:
    """Executes grid cells through the registry, memo and store.

    Args:
        context: configuration bundle handed to every platform.
        seed: dataset generation seed (part of the store digest, and
            of deterministic retry jitter).
        scale: dataset scale factor (part of the store digest).
        store: optional persistent report store; ``None`` keeps results
            in memory only.
        jobs: default worker count for :meth:`run_grid`.
    """

    def __init__(
        self,
        context: PlatformContext | None = None,
        *,
        seed: int = 1,
        scale: float = 1.0,
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        self.context = context or PlatformContext()
        self.seed = seed
        self.scale = scale
        self.store = store
        self.jobs = max(1, jobs)
        self.results: dict[GridKey, object] = {}
        self._graphs: dict[str, HeteroGraph] = {}
        self._artifacts: dict[str, DatasetArtifacts] = {}
        self._platforms: dict[str, Platform] = {}
        self._lock = threading.Lock()
        # Per-dataset build locks: concurrent cells that need the same
        # (not yet warmed) dataset build it once, not racily twice.
        self._build_locks: dict[str, threading.Lock] = {}

    # ------------------------------------------------------------------
    # Shared state (graphs, artifacts, platforms)
    # ------------------------------------------------------------------

    def graph(self, dataset: str) -> HeteroGraph:
        """The (cached) generated dataset or scenario graph.

        ``dataset`` is a Table 2 catalog name or a scenario reference
        (``family:key=value,...``); both resolve through
        :func:`repro.scenarios.load_workload` and cache under the name
        as given, so specs (which canonicalize references eagerly)
        share one graph per sweep point.
        """
        if dataset not in self._graphs:
            from repro.scenarios import load_workload

            inject("workload.build", key=dataset)
            self._graphs[dataset] = load_workload(
                dataset, seed=self.seed, scale=self.scale
            )
        return self._graphs[dataset]

    def _build_lock(self, dataset: str) -> threading.Lock:
        with self._lock:
            lock = self._build_locks.get(dataset)
            if lock is None:
                lock = self._build_locks[dataset] = threading.Lock()
            return lock

    def artifacts(self, dataset: str) -> DatasetArtifacts:
        """Warmed per-dataset topology artifacts (cached, built once)."""
        if dataset in self._artifacts:
            return self._artifacts[dataset]
        with self._build_lock(dataset):
            if dataset not in self._artifacts:
                self._artifacts[dataset] = DatasetArtifacts.build(
                    self.graph(dataset)
                )
        return self._artifacts[dataset]

    def platform(self, name: str) -> Platform:
        """The (cached) platform instance for ``name``."""
        if name not in self._platforms:
            self._platforms[name] = create_platform(name, self.context)
        return self._platforms[name]

    def warm_artifacts(
        self,
        datasets: list[str] | tuple[str, ...],
        *,
        jobs: int = 1,
        errors: str = "raise",
    ) -> dict[str, BaseException]:
        """Build the topology artifacts of every named dataset.

        Distinct datasets are independent, so with ``jobs > 1`` they
        warm concurrently on a pool (numpy releases the GIL in the
        sort-heavy trace work). Warming before a grid fan-out is what
        keeps parallel runs bit-identical to serial ones: once built,
        artifacts are read-only shared state.

        A failing build always names its dataset: with
        ``errors="raise"`` (default) the first failure — in dataset
        order, not completion order — re-raises wrapped in
        :class:`ArtifactBuildError`; with ``errors="collect"`` every
        failure is returned in a ``{dataset: exception}`` map so the
        caller can degrade per cell instead of aborting the grid.
        """
        if errors not in _ON_ERROR:
            raise ValueError(
                f"errors must be one of {_ON_ERROR}, got {errors!r}"
            )
        needed = [
            dataset
            for dataset in dict.fromkeys(datasets)
            if dataset not in self._artifacts
        ]
        failures: dict[str, BaseException] = {}

        def build(dataset: str) -> None:
            try:
                self.artifacts(dataset)
            except Exception as exc:
                failures[dataset] = exc

        if jobs > 1 and len(needed) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                list(pool.map(build, needed))
        else:
            for dataset in needed:
                build(dataset)
        if failures and errors == "raise":
            dataset = next(d for d in needed if d in failures)
            raise ArtifactBuildError(dataset, failures[dataset]) from failures[
                dataset
            ]
        return failures

    def _store_key(self, platform: Platform, model: str, dataset: str) -> str:
        # The workload digest covers the *resolved* generation recipe
        # (scenario family + full parameter dict, or the catalog
        # DatasetSpec) plus seed and scale, so changing any sweep
        # parameter — or a family default — misses even when the
        # textual dataset name is unchanged.
        from repro.scenarios import workload_digest

        digest = config_digest(
            self.seed,
            self.scale,
            workload_digest(dataset, self.seed, self.scale),
            *platform.digest_sources(),
        )
        return self.store.key_for(platform.name, model, dataset, digest)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _fill_from_store(self, cell: GridKey) -> bool:
        """Try to satisfy one cell from the persistent store."""
        platform_name, model, dataset = cell
        platform = self.platform(platform_name)
        report = self.store.load(self._store_key(platform, model, dataset))
        if report is None:
            return False
        with self._lock:
            self.results.setdefault(cell, report)
        return True

    def _save_best_effort(
        self, platform: Platform, model: str, dataset: str, report: object
    ) -> None:
        """Persist one report; a transiently failing write only costs
        the cache entry, never the computed cell."""
        try:
            self.store.save(self._store_key(platform, model, dataset), report)
        except Exception as exc:
            if not RetryPolicy.is_transient(exc):
                raise

    def run_cell(
        self,
        platform_name: str,
        model: str,
        dataset: str,
        *,
        probe_store: bool = True,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
    ):
        """Run (or fetch) one grid cell; memoized and store-backed.

        Transient failures (see :meth:`RetryPolicy.is_transient`) are
        retried up to ``retry.max_attempts`` with deterministic
        backoff seeded by ``(run seed, cell key, attempt)``. The
        terminal outcome either raises (``on_error="raise"``) or is
        returned as a :class:`CellFailure` (``on_error="collect"``);
        failures are never memoized, so a later call may retry the
        cell fresh.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        key: GridKey = (platform_name, model, dataset)
        with self._lock:
            if key in self.results:
                return self.results[key]
        if self.store is not None and probe_store and self._fill_from_store(key):
            return self.results[key]
        # Unknown platforms are configuration errors, never CellFailures.
        platform = self.platform(platform_name)
        started = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            try:
                artifacts = self.artifacts(dataset)
                inject("platform.simulate", key=key)
                report = platform.simulate(model, artifacts)
                break
            except Exception as exc:
                if retry is not None and retry.should_retry(exc, attempt):
                    delay = retry.delay_s(
                        attempt, seed=self.seed, token="|".join(key)
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if on_error == "collect":
                    return CellFailure.from_exception(
                        key,
                        exc,
                        attempts=attempt,
                        elapsed_s=time.perf_counter() - started,
                    )
                raise
        if self.store is not None:
            self._save_best_effort(platform, model, dataset, report)
        with self._lock:
            return self.results.setdefault(key, report)

    def run_grid(
        self,
        platforms: tuple[str, ...],
        models: tuple[str, ...],
        datasets: tuple[str, ...],
        *,
        jobs: int | None = None,
        on_error: str = "raise",
        retry: RetryPolicy | None = None,
    ) -> dict[GridKey, object]:
        """Populate (and return) results for a full grid.

        Store hits are resolved first (a fully warm store loads every
        report without generating a single graph). For the remaining
        cells the per-dataset artifacts are built before any cell runs
        (they are the shared state; with ``jobs > 1`` distinct
        datasets warm concurrently), then the cells fan out over a
        thread pool.

        With ``on_error="raise"`` (default) the first cell failure
        aborts the run. With ``on_error="collect"`` every cell runs to
        a terminal outcome and the returned mapping holds a report
        *or* a :class:`CellFailure` per cell — one bad cell costs
        exactly one entry, never the fan-out. Results are keyed by
        ``(platform, model, dataset)`` and independent of completion
        order.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        # Resolve every platform up front so an unknown name fails
        # before any simulation work starts.
        for name in platforms:
            self.platform(name)
        cells = list(
            dict.fromkeys(
                (p, m, d)
                for p in platforms
                for m in models
                for d in datasets
            )
        )
        jobs = self.jobs if jobs is None else max(1, jobs)
        pending = [c for c in cells if c not in self.results]
        if self.store is not None:
            pending = [c for c in pending if not self._fill_from_store(c)]
        failures: dict[GridKey, CellFailure] = {}
        if pending:
            # In collect mode a failed warm-up degrades to per-cell
            # failures (each cell retries the build under its own
            # retry budget); in raise mode it aborts, naming the
            # dataset.
            self.warm_artifacts(
                [d for _, _, d in pending], jobs=jobs, errors=on_error
            )

            def run(cell: GridKey):
                outcome = self.run_cell(
                    *cell, probe_store=False, retry=retry, on_error=on_error
                )
                if isinstance(outcome, CellFailure):
                    failures[cell] = outcome

            if jobs > 1 and len(pending) > 1:
                # The cells fan out only once every dataset is built
                # and read-only (warm_artifacts above).
                with ThreadPoolExecutor(max_workers=jobs) as pool:
                    list(pool.map(run, pending))
            else:
                for cell in pending:
                    run(cell)
        return {
            c: self.results[c] if c in self.results else failures[c]
            for c in cells
        }
