"""Parallel, failure-isolating executor of the platform grid.

The runner owns everything the old ``EvaluationSuite.run`` hard-coded:

- dataset graphs and their shared :class:`DatasetArtifacts` (built once
  per dataset, warmed, then read-only — the precondition for fanning
  cells out across workers),
- platform instances resolved through the registry,
- an in-memory result memo plus an optional persistent
  :class:`~repro.platforms.store.ArtifactStore`,
- a ``concurrent.futures`` thread or process pool for ``jobs > 1``.

Two fan-out backends share one contract (``executor=``):

- ``"thread"`` — workers share the address space; topology artifacts
  are shared by reference. Bounded by the GIL for the pure-Python
  parts of a simulation.
- ``"process"`` — true multicore. The parent warms each dataset once,
  publishes its topology arrays into shared memory
  (:mod:`repro.platforms.shm`), and workers attach them as zero-copy
  read-only views — no artifact is ever rebuilt or pickled per cell.
  All store I/O and memoization stay in the parent, so the store's
  bytes are identical to a serial run.
- ``"auto"`` — ``"process"`` when ``jobs > 1`` and the machine has
  more than one CPU, else ``"thread"``.

Simulations are deterministic pure functions of the warmed artifacts,
so parallel runs are bit-identical to serial ones under either
backend. Fault plans survive the process hop: workers re-arm a fresh
:class:`~repro.faults.FaultPlan` from the parent's ``(rules, seed)``,
and firing is a pure function of ``(seed, rule, site, key, n)`` — the
schedule hits the same cells it would in-process.

Failure semantics
-----------------

One raising cell no longer aborts the fan-out. :meth:`GridRunner.run_cell`
applies an optional :class:`~repro.platforms.failures.RetryPolicy`
(transient errors only — injected faults and OS-level I/O errors,
never validation ``ValueError``), and with ``on_error="collect"``
captures the terminal exception as a typed
:class:`~repro.platforms.failures.CellFailure` instead of raising.
:meth:`GridRunner.run_grid` propagates the choice across the whole
grid: ``"raise"`` (default) keeps the historical fail-fast contract,
``"collect"`` returns failures as values next to the surviving
reports. Store I/O never fails a cell: a failed load is a miss, a
failed transient save forfeits only the cache write.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)

from repro.faults import inject
from repro.graph.hetero import HeteroGraph
from repro.platforms.base import DatasetArtifacts, Platform, PlatformContext
from repro.platforms.failures import ArtifactBuildError, CellFailure, RetryPolicy
from repro.platforms.registry import create_platform
from repro.platforms.store import ArtifactStore, config_digest

__all__ = ["GridRunner", "resolve_executor", "resolve_jobs"]

GridKey = tuple[str, str, str]

_ON_ERROR = ("raise", "collect")
_EXECUTORS = ("thread", "process", "auto")

#: Start method for the process backend. ``fork`` is preferred where
#: available (no re-import, instant workers); ``REPRO_MP_START_METHOD``
#: overrides (e.g. ``spawn`` to exercise the macOS/Windows default).
ENV_MP_START_METHOD = "REPRO_MP_START_METHOD"


def resolve_executor(executor: str, jobs: int) -> str:
    """Collapse ``"auto"`` to a concrete backend for this machine."""
    if executor not in _EXECUTORS:
        raise ValueError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}"
        )
    if executor == "auto":
        return "process" if jobs > 1 and (os.cpu_count() or 1) > 1 else "thread"
    return executor


def resolve_jobs(jobs: int | str | None) -> int:
    """Parse a job count, accepting ``"auto"`` (= CPU count)."""
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            return os.cpu_count() or 1
        jobs = int(jobs)
    return max(1, jobs)


def _mp_context():
    import multiprocessing

    method = os.environ.get(ENV_MP_START_METHOD)
    if not method:
        available = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in available else "spawn"
    return multiprocessing.get_context(method)


# ----------------------------------------------------------------------
# Process-pool worker protocol
# ----------------------------------------------------------------------
#
# The initializer receives everything a worker needs exactly once per
# worker: the platform context, (seed, scale), the shared-memory
# handles of every published dataset, and the parent's fault schedule
# as picklable ``(rules, seed)`` (a FaultPlan holds a lock and cannot
# travel; firing is a pure function of the pair, so a re-armed copy
# hits the same cells). Workers keep a store-less GridRunner in module
# state; per-cell traffic is just the (tiny) cell key and its report.

_WORKER_RUNNER: "GridRunner | None" = None


def _worker_init(context, seed, scale, handles, fault_rules, fault_seed):
    global _WORKER_RUNNER
    from repro.faults import arm, disarm
    from repro.faults.plan import FaultPlan
    from repro.platforms.shm import attach_artifacts

    # Under fork the child inherits the parent's armed plan object;
    # disarm it first so the re-armed copy owns all counters.
    disarm()
    if fault_rules is not None:
        arm(FaultPlan(rules=fault_rules, seed=fault_seed))
    runner = GridRunner(context, seed=seed, scale=scale)
    for dataset, handle in handles.items():
        runner._artifacts[dataset] = attach_artifacts(handle)
    _WORKER_RUNNER = runner


def _worker_run_cell(cell, retry, on_error):
    outcome = _WORKER_RUNNER.run_cell(
        *cell, probe_store=False, retry=retry, on_error=on_error
    )
    return cell, outcome


def _close_segments(segments: dict) -> None:
    """Unlink every published segment (runner GC / interpreter exit)."""
    for segment in segments.values():
        segment.close()
    segments.clear()


class GridRunner:
    """Executes grid cells through the registry, memo and store.

    Args:
        context: configuration bundle handed to every platform.
        seed: dataset generation seed (part of the store digest, and
            of deterministic retry jitter).
        scale: dataset scale factor (part of the store digest).
        store: optional persistent report store; ``None`` keeps results
            in memory only.
        jobs: default worker count for :meth:`run_grid`.
        executor: default fan-out backend — ``"thread"``, ``"process"``
            or ``"auto"`` (see the module docstring).
    """

    def __init__(
        self,
        context: PlatformContext | None = None,
        *,
        seed: int = 1,
        scale: float = 1.0,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        executor: str = "thread",
    ) -> None:
        if executor not in _EXECUTORS:
            raise ValueError(
                f"executor must be one of {_EXECUTORS}, got {executor!r}"
            )
        self.context = context or PlatformContext()
        self.seed = seed
        self.scale = scale
        self.store = store
        self.jobs = max(1, jobs)
        self.executor = executor
        self.results: dict[GridKey, object] = {}
        self._graphs: dict[str, HeteroGraph] = {}
        self._artifacts: dict[str, DatasetArtifacts] = {}
        self._platforms: dict[str, Platform] = {}
        self._lock = threading.Lock()
        # Per-dataset build locks: concurrent cells that need the same
        # (not yet warmed) dataset build it once, not racily twice.
        self._build_locks: dict[str, threading.Lock] = {}
        # Published shared-memory segments (process backend), one per
        # dataset, reused across run_grid calls. The finalizer unlinks
        # them when the runner dies — including interpreter exit and
        # KeyboardInterrupt (weakref.finalize registers with atexit).
        self._segments: dict[str, object] = {}
        self._handles: dict[str, object] = {}
        self._segments_finalizer = weakref.finalize(
            self, _close_segments, self._segments
        )

    def close(self) -> None:
        """Release published shared-memory segments (idempotent).

        The exit-time finalizer stays armed, so a runner that publishes
        again after ``close()`` is still leak-safe.
        """
        self._handles.clear()
        _close_segments(self._segments)

    # ------------------------------------------------------------------
    # Shared state (graphs, artifacts, platforms)
    # ------------------------------------------------------------------

    def graph(self, dataset: str) -> HeteroGraph:
        """The (cached) generated dataset or scenario graph.

        ``dataset`` is a Table 2 catalog name or a scenario reference
        (``family:key=value,...``); both resolve through
        :func:`repro.scenarios.load_workload` and cache under the name
        as given, so specs (which canonicalize references eagerly)
        share one graph per sweep point.
        """
        if dataset not in self._graphs:
            from repro.scenarios import load_workload

            inject("workload.build", key=dataset)
            self._graphs[dataset] = load_workload(
                dataset, seed=self.seed, scale=self.scale
            )
        return self._graphs[dataset]

    def _build_lock(self, dataset: str) -> threading.Lock:
        with self._lock:
            lock = self._build_locks.get(dataset)
            if lock is None:
                lock = self._build_locks[dataset] = threading.Lock()
            return lock

    def artifacts(self, dataset: str) -> DatasetArtifacts:
        """Warmed per-dataset topology artifacts (cached, built once)."""
        if dataset in self._artifacts:
            return self._artifacts[dataset]
        with self._build_lock(dataset):
            if dataset not in self._artifacts:
                self._artifacts[dataset] = DatasetArtifacts.build(
                    self.graph(dataset)
                )
        return self._artifacts[dataset]

    def platform(self, name: str) -> Platform:
        """The (cached) platform instance for ``name``.

        Double-checked under ``_lock``: pool workers resolve platforms
        concurrently, and two unlocked builders would each construct
        (and one would silently discard) an instance.
        """
        if name in self._platforms:
            return self._platforms[name]
        with self._lock:
            if name not in self._platforms:
                self._platforms[name] = create_platform(name, self.context)
            return self._platforms[name]

    def warm_artifacts(
        self,
        datasets: list[str] | tuple[str, ...],
        *,
        jobs: int = 1,
        errors: str = "raise",
    ) -> dict[str, BaseException]:
        """Build the topology artifacts of every named dataset.

        Distinct datasets are independent, so with ``jobs > 1`` they
        warm concurrently on a pool (numpy releases the GIL in the
        sort-heavy trace work). Warming before a grid fan-out is what
        keeps parallel runs bit-identical to serial ones: once built,
        artifacts are read-only shared state.

        A failing build always names its dataset: with
        ``errors="raise"`` (default) the first failure — in dataset
        order, not completion order — re-raises wrapped in
        :class:`ArtifactBuildError`; with ``errors="collect"`` every
        failure is returned in a ``{dataset: exception}`` map so the
        caller can degrade per cell instead of aborting the grid.
        """
        if errors not in _ON_ERROR:
            raise ValueError(
                f"errors must be one of {_ON_ERROR}, got {errors!r}"
            )
        needed = [
            dataset
            for dataset in dict.fromkeys(datasets)
            if dataset not in self._artifacts
        ]
        failures: dict[str, BaseException] = {}

        def build(dataset: str) -> None:
            try:
                self.artifacts(dataset)
            except Exception as exc:
                failures[dataset] = exc

        if jobs > 1 and len(needed) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                list(pool.map(build, needed))
        else:
            for dataset in needed:
                build(dataset)
        if failures and errors == "raise":
            dataset = next(d for d in needed if d in failures)
            raise ArtifactBuildError(dataset, failures[dataset]) from failures[
                dataset
            ]
        return failures

    def publish_dataset(self, dataset: str):
        """Shared-memory handle of one warmed dataset (published once).

        The segment is owned by this runner and reused across fan-outs;
        :meth:`close` (or runner GC / interpreter exit) unlinks it.
        """
        handle = self._handles.get(dataset)
        if handle is not None:
            return handle
        from repro.platforms.shm import publish_artifacts
        from repro.scenarios import workload_digest

        artifacts = self.artifacts(dataset)
        with self._build_lock(dataset):
            if dataset not in self._handles:
                segment, handle = publish_artifacts(
                    artifacts,
                    digest=workload_digest(dataset, self.seed, self.scale),
                )
                self._segments[dataset] = segment
                self._handles[dataset] = handle
        return self._handles[dataset]

    def _store_key(self, platform: Platform, model: str, dataset: str) -> str:
        # The workload digest covers the *resolved* generation recipe
        # (scenario family + full parameter dict, or the catalog
        # DatasetSpec) plus seed and scale, so changing any sweep
        # parameter — or a family default — misses even when the
        # textual dataset name is unchanged.
        from repro.scenarios import workload_digest

        digest = config_digest(
            self.seed,
            self.scale,
            workload_digest(dataset, self.seed, self.scale),
            *platform.digest_sources(),
        )
        return self.store.key_for(platform.name, model, dataset, digest)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _fill_from_store(self, cell: GridKey) -> bool:
        """Try to satisfy one cell from the persistent store."""
        platform_name, model, dataset = cell
        platform = self.platform(platform_name)
        report = self.store.load(self._store_key(platform, model, dataset))
        if report is None:
            return False
        with self._lock:
            self.results.setdefault(cell, report)
        return True

    def _save_best_effort(
        self, platform: Platform, model: str, dataset: str, report: object
    ) -> None:
        """Persist one report; a transiently failing write only costs
        the cache entry, never the computed cell."""
        try:
            self.store.save(self._store_key(platform, model, dataset), report)
        except Exception as exc:
            if not RetryPolicy.is_transient(exc):
                raise

    def run_cell(
        self,
        platform_name: str,
        model: str,
        dataset: str,
        *,
        probe_store: bool = True,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
    ):
        """Run (or fetch) one grid cell; memoized and store-backed.

        Transient failures (see :meth:`RetryPolicy.is_transient`) are
        retried up to ``retry.max_attempts`` with deterministic
        backoff seeded by ``(run seed, cell key, attempt)``. The
        terminal outcome either raises (``on_error="raise"``) or is
        returned as a :class:`CellFailure` (``on_error="collect"``);
        failures are never memoized, so a later call may retry the
        cell fresh.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        key: GridKey = (platform_name, model, dataset)
        with self._lock:
            if key in self.results:
                return self.results[key]
        if self.store is not None and probe_store and self._fill_from_store(key):
            return self.results[key]
        # Unknown platforms are configuration errors, never CellFailures.
        platform = self.platform(platform_name)
        started = time.perf_counter()
        attempt = 0
        while True:
            attempt += 1
            try:
                artifacts = self.artifacts(dataset)
                inject("platform.simulate", key=key)
                report = platform.simulate(model, artifacts)
                break
            except Exception as exc:
                if retry is not None and retry.should_retry(exc, attempt):
                    delay = retry.delay_s(
                        attempt, seed=self.seed, token="|".join(key)
                    )
                    if delay > 0:
                        time.sleep(delay)
                    continue
                if on_error == "collect":
                    return CellFailure.from_exception(
                        key,
                        exc,
                        attempts=attempt,
                        elapsed_s=time.perf_counter() - started,
                    )
                raise
        if self.store is not None:
            self._save_best_effort(platform, model, dataset, report)
        with self._lock:
            return self.results.setdefault(key, report)

    def run_cells(
        self,
        cells: list[GridKey],
        *,
        jobs: int | None = None,
        executor: str | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
    ):
        """Yield ``(cell, outcome)`` for every cell, in completion order.

        The one fan-out primitive behind :meth:`run_grid` and
        ``Session.run_iter``: serial, thread-pool and process-pool
        execution share its contract — every cell yields exactly once
        with a report or (``on_error="collect"``) a
        :class:`CellFailure`; reports are memoized and store-saved in
        the parent process regardless of backend, so store bytes and
        memo contents are identical to a serial run.

        Callers must have warmed the artifacts of every cell's dataset
        (:meth:`warm_artifacts`); in collect mode, cells whose dataset
        failed to warm run in the parent where :meth:`run_cell` turns
        the build error into a typed failure.

        Abandoning the iterator early cancels cells not yet started
        and waits only for the ones in flight.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        jobs = self.jobs if jobs is None else max(1, jobs)
        mode = resolve_executor(
            self.executor if executor is None else executor, jobs
        )
        if jobs <= 1 or len(cells) <= 1:
            mode = "serial"

        if mode == "process":
            yield from self._run_cells_process(
                cells, jobs=jobs, retry=retry, on_error=on_error
            )
            return
        if mode == "thread":
            pool = ThreadPoolExecutor(max_workers=jobs)
            try:
                futures = {
                    pool.submit(
                        self.run_cell,
                        *cell,
                        probe_store=False,
                        retry=retry,
                        on_error=on_error,
                    ): cell
                    for cell in cells
                }
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        yield futures[future], future.result()
            finally:
                pool.shutdown(wait=True, cancel_futures=True)
            return
        for cell in cells:
            yield cell, self.run_cell(
                *cell, probe_store=False, retry=retry, on_error=on_error
            )

    def _run_cells_process(
        self,
        cells: list[GridKey],
        *,
        jobs: int,
        retry: RetryPolicy | None,
        on_error: str,
    ):
        """Process-pool fan-out over published shared-memory artifacts."""
        from repro.faults import active_plan

        # Datasets that failed to warm (collect mode) cannot be
        # published; their cells run in the parent, where run_cell
        # reproduces the thread backend's typed build failures.
        publishable = [
            d
            for d in dict.fromkeys(dataset for _, _, dataset in cells)
            if d in self._artifacts
        ]
        handles = {d: self.publish_dataset(d) for d in publishable}
        local = [c for c in cells if c[2] not in handles]
        remote = [c for c in cells if c[2] in handles]
        for cell in local:
            yield cell, self.run_cell(
                *cell, probe_store=False, retry=retry, on_error=on_error
            )
        if not remote:
            return

        plan = active_plan()
        fault_rules = plan.rules if plan is not None else None
        fault_seed = plan.seed if plan is not None else 0
        pool = ProcessPoolExecutor(
            max_workers=min(jobs, len(remote)),
            mp_context=_mp_context(),
            initializer=_worker_init,
            initargs=(
                self.context,
                self.seed,
                self.scale,
                handles,
                fault_rules,
                fault_seed,
            ),
        )
        try:
            futures = {
                pool.submit(_worker_run_cell, cell, retry, on_error): cell
                for cell in remote
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    cell, outcome = future.result()
                    if not isinstance(outcome, CellFailure):
                        # Memoization and the store write happen here,
                        # in the parent — exactly where the serial and
                        # thread paths do them — so the persisted
                        # bytes cannot depend on the backend.
                        if self.store is not None:
                            self._save_best_effort(
                                self.platform(cell[0]),
                                cell[1],
                                cell[2],
                                outcome,
                            )
                        with self._lock:
                            outcome = self.results.setdefault(cell, outcome)
                    yield cell, outcome
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    def run_grid(
        self,
        platforms: tuple[str, ...],
        models: tuple[str, ...],
        datasets: tuple[str, ...],
        *,
        jobs: int | None = None,
        executor: str | None = None,
        on_error: str = "raise",
        retry: RetryPolicy | None = None,
    ) -> dict[GridKey, object]:
        """Populate (and return) results for a full grid.

        Store hits are resolved first (a fully warm store loads every
        report without generating a single graph). For the remaining
        cells the per-dataset artifacts are built before any cell runs
        (they are the shared state; with ``jobs > 1`` distinct
        datasets warm concurrently), then the cells fan out through
        :meth:`run_cells` on the thread or process backend.

        With ``on_error="raise"`` (default) the first cell failure
        aborts the run. With ``on_error="collect"`` every cell runs to
        a terminal outcome and the returned mapping holds a report
        *or* a :class:`CellFailure` per cell — one bad cell costs
        exactly one entry, never the fan-out. Results are keyed by
        ``(platform, model, dataset)`` and independent of completion
        order and backend.
        """
        if on_error not in _ON_ERROR:
            raise ValueError(
                f"on_error must be one of {_ON_ERROR}, got {on_error!r}"
            )
        # Resolve every platform up front so an unknown name fails
        # before any simulation work starts.
        for name in platforms:
            self.platform(name)
        cells = list(
            dict.fromkeys(
                (p, m, d)
                for p in platforms
                for m in models
                for d in datasets
            )
        )
        jobs = self.jobs if jobs is None else max(1, jobs)
        pending = [c for c in cells if c not in self.results]
        if self.store is not None:
            pending = [c for c in pending if not self._fill_from_store(c)]
        failures: dict[GridKey, CellFailure] = {}
        if pending:
            # In collect mode a failed warm-up degrades to per-cell
            # failures (each cell retries the build under its own
            # retry budget); in raise mode it aborts, naming the
            # dataset.
            self.warm_artifacts(
                [d for _, _, d in pending], jobs=jobs, errors=on_error
            )
            for cell, outcome in self.run_cells(
                pending,
                jobs=jobs,
                executor=executor,
                retry=retry,
                on_error=on_error,
            ):
                if isinstance(outcome, CellFailure):
                    failures[cell] = outcome
        return {
            c: self.results[c] if c in self.results else failures[c]
            for c in cells
        }
