"""Parallel executor of the platform x model x dataset grid.

The runner owns everything the old ``EvaluationSuite.run`` hard-coded:

- dataset graphs and their shared :class:`DatasetArtifacts` (built once
  per dataset, warmed, then read-only — the precondition for fanning
  cells out across workers),
- platform instances resolved through the registry,
- an in-memory result memo plus an optional persistent
  :class:`~repro.platforms.store.ArtifactStore`,
- a ``concurrent.futures`` thread pool for ``jobs > 1``.

Workers share one address space, so topology artifacts and the replay
caches are shared rather than re-pickled per cell (a process pool
would re-pay the dominant cost — artifact construction — in every
worker). Simulations are deterministic pure functions of the warmed
artifacts, so parallel runs are bit-identical to serial ones.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.graph.hetero import HeteroGraph
from repro.platforms.base import DatasetArtifacts, Platform, PlatformContext
from repro.platforms.registry import create_platform
from repro.platforms.store import ArtifactStore, config_digest

__all__ = ["GridRunner"]

GridKey = tuple[str, str, str]


class GridRunner:
    """Executes grid cells through the registry, memo and store.

    Args:
        context: configuration bundle handed to every platform.
        seed: dataset generation seed (part of the store digest).
        scale: dataset scale factor (part of the store digest).
        store: optional persistent report store; ``None`` keeps results
            in memory only.
        jobs: default worker count for :meth:`run_grid`.
    """

    def __init__(
        self,
        context: PlatformContext | None = None,
        *,
        seed: int = 1,
        scale: float = 1.0,
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        self.context = context or PlatformContext()
        self.seed = seed
        self.scale = scale
        self.store = store
        self.jobs = max(1, jobs)
        self.results: dict[GridKey, object] = {}
        self._graphs: dict[str, HeteroGraph] = {}
        self._artifacts: dict[str, DatasetArtifacts] = {}
        self._platforms: dict[str, Platform] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Shared state (graphs, artifacts, platforms)
    # ------------------------------------------------------------------

    def graph(self, dataset: str) -> HeteroGraph:
        """The (cached) generated dataset or scenario graph.

        ``dataset`` is a Table 2 catalog name or a scenario reference
        (``family:key=value,...``); both resolve through
        :func:`repro.scenarios.load_workload` and cache under the name
        as given, so specs (which canonicalize references eagerly)
        share one graph per sweep point.
        """
        if dataset not in self._graphs:
            from repro.scenarios import load_workload

            self._graphs[dataset] = load_workload(
                dataset, seed=self.seed, scale=self.scale
            )
        return self._graphs[dataset]

    def artifacts(self, dataset: str) -> DatasetArtifacts:
        """Warmed per-dataset topology artifacts (cached)."""
        if dataset not in self._artifacts:
            self._artifacts[dataset] = DatasetArtifacts.build(
                self.graph(dataset)
            )
        return self._artifacts[dataset]

    def platform(self, name: str) -> Platform:
        """The (cached) platform instance for ``name``."""
        if name not in self._platforms:
            self._platforms[name] = create_platform(name, self.context)
        return self._platforms[name]

    def warm_artifacts(
        self, datasets: list[str] | tuple[str, ...], *, jobs: int = 1
    ) -> None:
        """Build the topology artifacts of every named dataset.

        Distinct datasets are independent, so with ``jobs > 1`` they
        warm concurrently on a pool (numpy releases the GIL in the
        sort-heavy trace work). Warming before a grid fan-out is what
        keeps parallel runs bit-identical to serial ones: once built,
        artifacts are read-only shared state.
        """
        needed = [
            dataset
            for dataset in dict.fromkeys(datasets)
            if dataset not in self._artifacts
        ]
        if jobs > 1 and len(needed) > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                list(pool.map(self.artifacts, needed))
        else:
            for dataset in needed:
                self.artifacts(dataset)

    def _store_key(self, platform: Platform, model: str, dataset: str) -> str:
        # The workload digest covers the *resolved* generation recipe
        # (scenario family + full parameter dict, or the catalog
        # DatasetSpec) plus seed and scale, so changing any sweep
        # parameter — or a family default — misses even when the
        # textual dataset name is unchanged.
        from repro.scenarios import workload_digest

        digest = config_digest(
            self.seed,
            self.scale,
            workload_digest(dataset, self.seed, self.scale),
            *platform.digest_sources(),
        )
        return self.store.key_for(platform.name, model, dataset, digest)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _fill_from_store(self, cell: GridKey) -> bool:
        """Try to satisfy one cell from the persistent store."""
        platform_name, model, dataset = cell
        platform = self.platform(platform_name)
        report = self.store.load(self._store_key(platform, model, dataset))
        if report is None:
            return False
        with self._lock:
            self.results.setdefault(cell, report)
        return True

    def run_cell(
        self,
        platform_name: str,
        model: str,
        dataset: str,
        *,
        probe_store: bool = True,
    ):
        """Run (or fetch) one grid cell; memoized and store-backed."""
        key: GridKey = (platform_name, model, dataset)
        with self._lock:
            if key in self.results:
                return self.results[key]
        if self.store is not None and probe_store and self._fill_from_store(key):
            return self.results[key]
        platform = self.platform(platform_name)
        report = platform.simulate(model, self.artifacts(dataset))
        if self.store is not None:
            self.store.save(self._store_key(platform, model, dataset), report)
        with self._lock:
            return self.results.setdefault(key, report)

    def run_grid(
        self,
        platforms: tuple[str, ...],
        models: tuple[str, ...],
        datasets: tuple[str, ...],
        *,
        jobs: int | None = None,
    ) -> dict[GridKey, object]:
        """Populate (and return) results for a full grid.

        Store hits are resolved first (a fully warm store loads every
        report without generating a single graph). For the remaining
        cells the per-dataset artifacts are built before any cell runs
        (they are the shared state; with ``jobs > 1`` distinct
        datasets warm concurrently), then the cells fan out over a
        thread pool.
        Results are keyed by ``(platform, model, dataset)`` and
        independent of completion order.
        """
        # Resolve every platform up front so an unknown name fails
        # before any simulation work starts.
        for name in platforms:
            self.platform(name)
        cells = list(
            dict.fromkeys(
                (p, m, d)
                for p in platforms
                for m in models
                for d in datasets
            )
        )
        jobs = self.jobs if jobs is None else max(1, jobs)
        pending = [c for c in cells if c not in self.results]
        if self.store is not None:
            pending = [c for c in pending if not self._fill_from_store(c)]
        if pending:
            self.warm_artifacts(
                [d for _, _, d in pending], jobs=jobs
            )

            def run(cell: GridKey):
                return self.run_cell(*cell, probe_store=False)

            if jobs > 1 and len(pending) > 1:
                # The cells fan out only once every dataset is built
                # and read-only (warm_artifacts above).
                with ThreadPoolExecutor(max_workers=jobs) as pool:
                    list(pool.map(run, pending))
            else:
                for cell in pending:
                    run(cell)
        return {c: self.results[c] for c in cells}
