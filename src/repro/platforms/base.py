"""The platform abstraction: what every simulated target must provide.

A *platform* is one column of the paper's evaluation grid (T4, A100,
HiHGNN, HiHGNN+GDR-HGNN, or any variant an experiment registers). Each
platform turns a dataset into shared topology artifacts (:meth:`Platform.prepare`)
and simulates one model on those artifacts (:meth:`Platform.simulate`).
The split matters for the grid runner: ``prepare`` output is pure
topology, built once per dataset and shared read-only by every
platform x model cell, while ``simulate`` owns all mutable simulator
state and is safe to fan out across workers.

Adapters for the four paper platforms live next to the simulators they
wrap (:mod:`repro.gpu.platform`, :mod:`repro.accelerator.platform`,
:mod:`repro.frontend.platform`) and register themselves with
:func:`repro.platforms.registry.register_platform`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar

from repro.accelerator.config import HiHGNNConfig
from repro.frontend.config import GDRConfig
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs
from repro.models.base import ModelConfig

__all__ = ["PlatformContext", "DatasetArtifacts", "Platform"]


@dataclass(frozen=True)
class PlatformContext:
    """Configuration bundle handed to every platform adapter.

    Adapters pick the pieces they need (GPU platforms only read
    ``model_config``; the GDR system reads all three) and declare which
    pieces feed their artifact-store digest via
    :meth:`Platform.digest_sources`.
    """

    accelerator: HiHGNNConfig = field(default_factory=HiHGNNConfig)
    frontend: GDRConfig = field(default_factory=GDRConfig)
    model_config: ModelConfig = field(default_factory=ModelConfig)


@dataclass
class DatasetArtifacts:
    """Shared per-dataset topology artifacts (read-only after build).

    Holds the dataset graph and its SGB output with every lazy
    per-semantic-graph memo (CSR/CSC views, active vertex sets, NA
    trace, replay artifact and its stack distances) forced eagerly, so
    concurrent ``simulate`` calls never race on cache fills.
    """

    graph: HeteroGraph
    semantic_graphs: list[SemanticGraph]

    @classmethod
    def build(
        cls,
        graph: HeteroGraph,
        semantic_graphs: list[SemanticGraph] | None = None,
    ) -> "DatasetArtifacts":
        """Build (or adopt) the SGB output and warm all topology caches."""
        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)
        for sg in semantic_graphs:
            sg.csr
            sg.csc
            sg.active_src()
            sg.active_dst()
            sg.na_replay().distances
        return cls(graph=graph, semantic_graphs=semantic_graphs)


class Platform(abc.ABC):
    """One simulated execution target of the evaluation grid.

    Subclasses set :attr:`name` via the ``@register_platform("...")``
    decorator and implement :meth:`simulate`. The default
    :meth:`prepare` builds the shared topology artifacts; platforms
    with extra per-dataset preprocessing may extend it.
    """

    name: ClassVar[str] = ""

    def __init__(self, context: PlatformContext | None = None) -> None:
        self.context = context or PlatformContext()

    def prepare(
        self,
        graph: HeteroGraph,
        semantic_graphs: list[SemanticGraph] | DatasetArtifacts | None = None,
    ) -> DatasetArtifacts:
        """Turn one dataset into simulation-ready shared artifacts.

        Accepts raw SGB output (warmed and wrapped) or an already-built
        :class:`DatasetArtifacts` (returned as-is).
        """
        if isinstance(semantic_graphs, DatasetArtifacts):
            return semantic_graphs
        return DatasetArtifacts.build(graph, semantic_graphs)

    @abc.abstractmethod
    def simulate(self, model_name: str, artifacts: DatasetArtifacts, **kwargs):
        """Simulate one model on prepared artifacts; returns a report."""

    def _labelled(self, report):
        """Stamp the registry name on a report (variant subclasses would
        otherwise carry the wrapped simulator's base label)."""
        if self.name:
            report.platform = self.name
        return report

    def run(
        self,
        graph: HeteroGraph,
        model_name: str,
        *,
        semantic_graphs: list[SemanticGraph] | DatasetArtifacts | None = None,
        **kwargs,
    ):
        """Convenience: ``simulate(prepare(...))`` in one call."""
        return self.simulate(
            model_name, self.prepare(graph, semantic_graphs), **kwargs
        )

    def digest_sources(self) -> tuple:
        """Objects whose configuration identifies this platform's results.

        Used by the artifact store: two runs whose digest sources
        ``repr`` identically may share cached reports. The default is
        the whole context (always correct, conservatively coarse);
        adapters narrow it to the configs they actually read.
        """
        return (self.context,)
