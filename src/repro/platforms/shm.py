"""Zero-copy shared-memory publication of dataset topology artifacts.

The process-pool grid backend must not re-pay the dominant grid cost —
topology-artifact construction (CSR sorts, NA trace gathers, stack
distances) — once per worker, nor pickle tens of megabytes of arrays
per cell. Instead the parent *publishes* each warmed
:class:`~repro.platforms.base.DatasetArtifacts` once:

1. every contiguous numpy array of every semantic graph
   (:meth:`SemanticGraph.topology_arrays`) is packed, 64-byte aligned,
   into one shared segment;
2. a small picklable :class:`ArtifactsHandle` (segment name, array
   table-of-contents, scalar graph metadata, content digest) travels
   to the workers through the pool initializer;
3. each worker attaches the segment and rebuilds the artifacts as
   **read-only zero-copy views** via the trusted constructors
   (:meth:`CSR.from_parts`, :meth:`SemanticGraph.from_shared`,
   :meth:`TraceArtifact.from_parts`) — no sort, no gather, no copy.

Two interchangeable backends:

- ``"shm"`` — POSIX shared memory via :mod:`multiprocessing.shared_memory`
  (``/dev/shm`` on Linux). Default where available.
- ``"mmap"`` — a file in the temp directory mapped with :mod:`mmap`.
  Fallback for platforms/containers without POSIX shared memory, and
  selectable via ``REPRO_SHM_BACKEND=mmap``.

Lifecycle hygiene
-----------------

Segments are owned by the process that created them. The owner unlinks
on :meth:`ArtifactSegment.close` — called by ``GridRunner.close()``,
by a ``weakref.finalize`` when the runner is garbage collected, and
(because ``finalize`` registers with ``atexit``) on normal interpreter
exit and ``KeyboardInterrupt``. Attaching workers *unregister* the
segment from their ``resource_tracker`` immediately: on Python 3.11
the tracker would otherwise both warn about and unlink segments it
never owned when the worker exits (bpo-39959). Worker crashes cannot
leak segments for the same reason — only the parent owns them.

A 64-byte header holding the SHA-256 of the table-of-contents plus the
publisher's content digest is written at offset 0 and verified on
attach, so a stale or recycled segment name fails loudly instead of
serving wrong topology.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import secrets
import tempfile
import weakref
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.faults import inject
from repro.graph.hetero import HeteroGraph, Relation
from repro.graph.semantic import SemanticGraph

__all__ = [
    "ArraySpec",
    "SegmentHandle",
    "ArtifactSegment",
    "AttachedSegment",
    "ArtifactsHandle",
    "publish_artifacts",
    "attach_artifacts",
    "SegmentIntegrityError",
]

ENV_SHM_BACKEND = "REPRO_SHM_BACKEND"
_BACKENDS = ("shm", "mmap")
_ALIGN = 64
_HEADER_BYTES = 64
#: Segment name prefix (kept short: macOS caps POSIX shm names at 31).
_NAME_PREFIX = "repro-"

#: Segment names created (owned) by this process. Attaching to one of
#: these must NOT unregister it from the resource tracker — the owner's
#: registration is legitimate and backs the exit-time safety net.
_OWNED_NAMES: set[str] = set()


class SegmentIntegrityError(RuntimeError):
    """An attached segment does not match its handle's digest/layout."""


def _segment_name() -> str:
    # repro: lint-ok[REP001] segment names need OS-wide uniqueness, not
    # reproducibility — no simulation result ever depends on the name
    return f"{_NAME_PREFIX}{os.getpid() % 100000}-{secrets.token_hex(6)}"


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


@dataclass(frozen=True)
class ArraySpec:
    """Table-of-contents entry: where one named array lives."""

    name: str
    dtype: str
    shape: tuple[int, ...]
    offset: int

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


def _layout_digest(arrays: tuple[ArraySpec, ...], digest: str) -> bytes:
    """Header bytes binding the TOC and the publisher's content digest."""
    h = hashlib.sha256()
    h.update(digest.encode())
    for spec in arrays:
        h.update(
            f"{spec.name}|{spec.dtype}|{spec.shape}|{spec.offset}".encode()
        )
    return h.digest()  # 32 bytes, zero-padded to _HEADER_BYTES on write


@dataclass(frozen=True)
class SegmentHandle:
    """Picklable address of one published segment.

    ``name`` is the POSIX shared-memory name (``backend="shm"``) or
    the absolute file path (``backend="mmap"``). ``digest`` is the
    publisher's content digest, bound into the segment header.
    """

    backend: str
    name: str
    size: int
    arrays: tuple[ArraySpec, ...]
    digest: str

    def attach(self) -> "AttachedSegment":
        """Map the segment read-only and verify its header."""
        return AttachedSegment(self)


class AttachedSegment:
    """A worker-side read-only mapping of a published segment."""

    def __init__(self, handle: SegmentHandle) -> None:
        inject("shm.attach", key=handle.name)
        self.handle = handle
        self._shm = None
        self._mm = None
        if handle.backend == "shm":
            from multiprocessing import shared_memory

            self._shm = shared_memory.SharedMemory(name=handle.name)
            # Python 3.11's resource tracker registers *attached*
            # segments as if this process owned them, then unlinks and
            # warns at exit. Only the publisher owns the segment — keep
            # the registration only in the owning process.
            if handle.name not in _OWNED_NAMES:
                _untrack(self._shm)
            self._buf = self._shm.buf
        elif handle.backend == "mmap":
            with open(handle.name, "rb") as fh:
                self._mm = mmap.mmap(
                    fh.fileno(), handle.size, access=mmap.ACCESS_READ
                )
            self._buf = memoryview(self._mm)
        else:  # pragma: no cover - handle constructed by this module
            raise ValueError(f"unknown segment backend {handle.backend!r}")
        if self._shm is not None:
            # At garbage collection ``SharedMemory.__del__`` may run
            # while numpy views still export the buffer and raise an
            # ignored ``BufferError``; neutralize the mapping first.
            self._shm_finalizer = weakref.finalize(
                self, _quiet_close_shm, self._shm
            )
        expected = _layout_digest(handle.arrays, handle.digest)
        if bytes(self._buf[: len(expected)]) != expected:
            self.close()
            raise SegmentIntegrityError(
                f"segment {handle.name!r} does not match its handle "
                "(stale name or corrupted mapping)"
            )

    def array(self, name: str) -> np.ndarray:
        """The named array as a read-only zero-copy view."""
        for spec in self.handle.arrays:
            if spec.name == name:
                view = np.frombuffer(
                    self._buf,
                    dtype=np.dtype(spec.dtype),
                    count=int(np.prod(spec.shape, dtype=np.int64)),
                    offset=spec.offset,
                ).reshape(spec.shape)
                view.flags.writeable = False
                return view
        raise KeyError(f"segment has no array named {name!r}")

    def arrays(self) -> dict[str, np.ndarray]:
        """All arrays, keyed by TOC name (read-only views)."""
        return {spec.name: self.array(spec.name) for spec in self.handle.arrays}

    def close(self) -> None:
        """Unmap (views into the segment become invalid). Idempotent.

        Tolerates live numpy views (``BufferError``): the mapping then
        stays until the views die, which is safe — attached segments
        are read-only and never owned by this process.
        """
        self._buf = None
        if self._shm is not None:
            _quiet_close_shm(self._shm)
            self._shm = None
        if self._mm is not None:
            try:
                self._mm.close()
            except BufferError:
                pass  # views keep the mapping; reclaimed when they die
            self._mm = None


def _quiet_close_shm(shm) -> None:
    """Close a ``SharedMemory`` mapping without ever raising.

    With live numpy views the buffer cannot be released; drop the
    mapping references instead (the views keep it alive, and CPython
    reclaims it silently when they die) and close the descriptor, so
    nothing leaks and ``SharedMemory.__del__`` cannot raise an ignored
    ``BufferError`` at a later garbage collection.
    """
    try:
        shm.close()
        return
    except BufferError:
        pass
    try:  # pragma: no cover - CPython SharedMemory internals
        shm._buf = None
        shm._mmap = None
        fd = getattr(shm, "_fd", -1)
        if fd >= 0:
            os.close(fd)
            shm._fd = -1
    except Exception:
        pass


def _untrack(shm) -> None:
    """Remove an attached-only segment from this process's tracker."""
    try:  # pragma: no cover - tracker layout is a CPython detail
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class ArtifactSegment:
    """One owned shared segment packing named contiguous arrays.

    Created by the publisher; :attr:`handle` is the picklable address
    workers attach through. :meth:`close` unmaps *and unlinks* — the
    segment does not outlive its owner.
    """

    def __init__(self, backend, name, size, arrays, digest, shm, mm, path):
        self.backend = backend
        self.name = name
        self.size = size
        self._arrays = arrays
        self.digest = digest
        self._shm = shm
        self._mm = mm
        self._path = path
        self._closed = False
        # Runs on explicit close, on GC of the segment, and at
        # interpreter exit (finalize registers with atexit) — normal
        # exit, KeyboardInterrupt and worker crashes all reclaim.
        self._finalizer = weakref.finalize(
            self, _release_segment, backend, name, shm, mm, path
        )

    @classmethod
    def create(
        cls,
        arrays: dict[str, np.ndarray],
        *,
        digest: str = "",
        backend: str | None = None,
    ) -> "ArtifactSegment":
        """Pack ``arrays`` into a fresh shared segment.

        ``backend=None`` honours ``$REPRO_SHM_BACKEND`` and otherwise
        tries POSIX shared memory first, falling back to a mapped temp
        file when the platform refuses.
        """
        if backend is None:
            backend = os.environ.get(ENV_SHM_BACKEND) or None
        if backend is not None and backend not in _BACKENDS:
            raise ValueError(
                f"unknown shm backend {backend!r}; known: {_BACKENDS}"
            )
        specs: list[ArraySpec] = []
        offset = _HEADER_BYTES
        contiguous: dict[str, np.ndarray] = {}
        for name, array in arrays.items():
            array = np.ascontiguousarray(array)
            contiguous[name] = array
            offset = _align(offset)
            specs.append(
                ArraySpec(
                    name=name,
                    dtype=array.dtype.str,
                    shape=tuple(int(d) for d in array.shape),
                    offset=offset,
                )
            )
            offset += array.nbytes
        size = max(offset, _HEADER_BYTES + 1)
        toc = tuple(specs)

        name = _segment_name()
        inject("shm.publish", key=name)
        shm = mm = path = None
        if backend in (None, "shm"):
            try:
                from multiprocessing import shared_memory

                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
                _OWNED_NAMES.add(name)
                backend = "shm"
                buf = shm.buf
            except OSError:
                if backend == "shm":
                    raise
                backend = None
        if backend in (None, "mmap"):
            path = Path(tempfile.gettempdir()) / f"{name}.shm"
            with open(path, "wb") as fh:
                fh.truncate(size)
            fd = os.open(path, os.O_RDWR)
            try:
                mm = mmap.mmap(fd, size)
            finally:
                os.close(fd)
            backend = "mmap"
            buf = memoryview(mm)

        header = _layout_digest(toc, digest)
        buf[: len(header)] = header
        for spec, array in zip(toc, contiguous.values()):
            if array.nbytes:
                buf[spec.offset : spec.offset + array.nbytes] = (
                    array.tobytes()
                )
        return cls(
            backend=backend,
            name=name if backend == "shm" else str(path),
            size=size,
            arrays=toc,
            digest=digest,
            shm=shm,
            mm=mm,
            path=path,
        )

    @property
    def handle(self) -> SegmentHandle:
        return SegmentHandle(
            backend=self.backend,
            name=self.name,
            size=self.size,
            arrays=self._arrays,
            digest=self.digest,
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unmap and unlink the segment (idempotent)."""
        self._closed = True
        self._finalizer()

    def __enter__(self) -> "ArtifactSegment":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _release_segment(backend, name, shm, mm, path) -> None:
    """Owner-side teardown: unmap then unlink (idempotent, exception-free)."""
    _OWNED_NAMES.discard(name)
    if backend == "shm" and shm is not None:
        try:
            _quiet_close_shm(shm)
        except Exception:
            pass
        try:
            shm.unlink()
        except Exception:
            pass
    if mm is not None:
        try:
            mm.close()
        except Exception:
            pass
    if path is not None:
        try:
            os.unlink(path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# DatasetArtifacts publication
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactsHandle:
    """Picklable description of one published :class:`DatasetArtifacts`.

    Carries the segment handle plus every scalar needed to rebuild the
    :class:`HeteroGraph` and its warmed semantic graphs on attach. The
    ``digest`` (also bound into the segment header) identifies the
    workload recipe the parent built, so a worker can prove it
    attached the artifacts its cells expect.
    """

    segment: SegmentHandle
    graph_name: str
    vertex_types: tuple[tuple[str, int, int], ...]  # (type, count, feat_dim)
    graphs: tuple[tuple, ...]  # per-sg (prefix, topology_meta items)

    @property
    def digest(self) -> str:
        return self.segment.digest


def publish_artifacts(
    artifacts,
    *,
    digest: str = "",
    backend: str | None = None,
) -> tuple[ArtifactSegment, ArtifactsHandle]:
    """Pack one warmed dataset's topology into a shared segment.

    Returns the owned segment (caller manages its lifecycle) and the
    picklable handle workers attach through. Array names are prefixed
    ``sg<i>.`` per semantic graph, in SGB order.
    """
    graph: HeteroGraph = artifacts.graph
    arrays: dict[str, np.ndarray] = {}
    metas: list[tuple] = []
    for i, sg in enumerate(artifacts.semantic_graphs):
        prefix = f"sg{i}."
        for name, array in sg.topology_arrays().items():
            arrays[prefix + name] = array
        metas.append((prefix, tuple(sorted(sg.topology_meta().items()))))
    segment = ArtifactSegment.create(arrays, digest=digest, backend=backend)
    handle = ArtifactsHandle(
        segment=segment.handle,
        graph_name=graph.name,
        vertex_types=tuple(
            (vtype, graph.num_vertices(vtype), graph.feature_dim(vtype))
            for vtype in graph.vertex_types
        ),
        graphs=tuple(metas),
    )
    return segment, handle


def attach_artifacts(handle: ArtifactsHandle):
    """Rebuild read-only :class:`DatasetArtifacts` from a published handle.

    Zero-copy: every array of every semantic graph (and the hetero
    graph's edge arrays, which the SGB stage shares with them) is a
    view into the attached segment. The returned object keeps the
    mapping alive via an ``_attached_segment`` reference; it lives for
    the worker's lifetime.
    """
    from repro.platforms.base import DatasetArtifacts

    attached = handle.segment.attach()
    semantic_graphs: list[SemanticGraph] = []
    edges: dict[Relation, tuple[np.ndarray, np.ndarray]] = {}
    for prefix, meta_items in handle.graphs:
        meta = dict(meta_items)
        sg_arrays = {
            name[len(prefix):]: attached.array(name)
            for name in (
                spec.name
                for spec in handle.segment.arrays
                if spec.name.startswith(prefix)
            )
        }
        sg = SemanticGraph.from_shared(meta, sg_arrays)
        semantic_graphs.append(sg)
        edges[sg.relation] = (sg.src, sg.dst)
    graph = HeteroGraph(
        num_vertices={t: n for t, n, _ in handle.vertex_types},
        feature_dims={t: d for t, _, d in handle.vertex_types},
        edges=edges,
        name=handle.graph_name,
    )
    artifacts = DatasetArtifacts(graph=graph, semantic_graphs=semantic_graphs)
    artifacts._attached_segment = attached
    return artifacts
