"""Content-addressed on-disk store for simulation reports.

Every grid cell is addressed by the SHA-256 of
``(code version, platform, model, dataset, config digest)``:

- *code version* is a digest over the contents of every ``repro``
  source file, so editing any simulator invalidates the whole store
  without manual cache busting;
- *config digest* covers the ``repr`` of the configuration objects the
  platform actually reads (plus dataset seed/scale), so changing a
  buffer size or the model width misses cleanly while unrelated
  platforms keep their entries.

Reports are pickled under ``$REPRO_ARTIFACT_DIR`` (default
``~/.cache/repro/artifacts``), sharded by key prefix. Writes are
atomic (temp file + ``os.replace``), so concurrent grid workers and
repeated CLI invocations can share one store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ArtifactStore", "StoreStats", "config_digest", "code_version"]

ENV_STORE_DIR = "REPRO_ARTIFACT_DIR"
_PICKLE_PROTOCOL = 4

_code_version: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def config_digest(*sources: object) -> str:
    """Digest of configuration objects via their canonical ``repr``.

    All configuration types involved (frozen dataclasses, tuples,
    numbers, strings) have deterministic reprs, which keeps the digest
    stable across processes without custom serialization.
    """
    h = hashlib.sha256()
    for source in sources:
        h.update(repr(source).encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


@dataclass
class StoreStats:
    """Hit/miss/write counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0


class ArtifactStore:
    """Persistent, content-addressed report cache.

    Args:
        root: store directory. Defaults to ``$REPRO_ARTIFACT_DIR`` or
            ``~/.cache/repro/artifacts``.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(ENV_STORE_DIR) or (
                Path.home() / ".cache" / "repro" / "artifacts"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        # Grid workers call load/save concurrently; counter updates are
        # read-modify-write and need the lock to stay exact.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(
        self, platform: str, model: str, dataset: str, digest: str
    ) -> str:
        """The content address of one grid cell's report."""
        raw = "|".join((code_version(), platform, model, dataset, digest))
        return hashlib.sha256(raw.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def load(self, key: str):
        """The stored report, or ``None`` on a miss (counted)."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                report = pickle.load(fh)
        except FileNotFoundError:
            with self._stats_lock:
                self.stats.misses += 1
            return None
        except Exception:
            # Corrupt or unreadable entry: drop it and treat as a miss.
            path.unlink(missing_ok=True)
            with self._stats_lock:
                self.stats.misses += 1
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return report

    def save(self, key: str, report: object) -> None:
        """Persist one report atomically."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(report, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.puts += 1

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
