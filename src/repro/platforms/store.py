"""Content-addressed, crash-safe on-disk store for simulation reports.

Every grid cell is addressed by the SHA-256 of
``(code version, platform, model, dataset, config digest)``:

- *code version* is a digest over the contents of every ``repro``
  source file, so editing any simulator invalidates the whole store
  without manual cache busting;
- *config digest* covers the ``repr`` of the configuration objects the
  platform actually reads (plus dataset seed/scale), so changing a
  buffer size or the model width misses cleanly while unrelated
  platforms keep their entries.

Crash-safety and concurrency guarantees
---------------------------------------

Payloads are pickled under ``$REPRO_ARTIFACT_DIR`` (default
``~/.cache/repro/artifacts``), sharded by key prefix, inside a
schema-versioned envelope that carries a CRC32 checksum of the
payload bytes. The store is safe against:

- **Torn writes / power loss**: writes go to a temp file that is
  fsynced before an atomic ``os.replace``, followed by a directory
  fsync — after a crash the entry is either the complete old payload
  or the complete new one, never a prefix. Orphaned ``*.tmp`` files
  left by a killed writer are ignored by ``len()``/iteration and
  collected by :meth:`ArtifactStore.gc`.
- **Bit rot / corruption**: a payload whose checksum (or envelope)
  does not validate is never returned. It is moved to
  ``quarantine/`` (counted in :attr:`StoreStats.quarantined`) for
  post-mortem instead of being silently unlinked; schema- or
  version-drifted entries (valid but stale) are evicted and counted
  in :attr:`StoreStats.evicted`.
- **Cross-process races**: mutations (replace, delete, quarantine)
  take an advisory ``fcntl`` lock on a per-shard lockfile, and a
  reader that sees an invalid entry re-reads it under the lock before
  quarantining — so a concurrent writer's freshly replaced entry is
  served, not destroyed (the historical delete-vs-replace race).
- **Transient I/O errors** (including injected
  :class:`~repro.faults.errors.InjectedIOError`): a failed *read* is
  a plain miss that leaves the file untouched (counted in
  :attr:`StoreStats.read_errors`); a failed *write* raises to the
  caller, who treats the cache write as best-effort.

The index
---------

``index.json`` at the store root tracks every committed key with its
schema tag under a monotonic version counter. It is *advisory*
metadata — entry files stay the source of truth and reads never
consult it — but it gives ``repro store stats`` and tests an O(1)
inventory, and it is the store's multi-writer stress point: every
mutation (save, delete, evict, quarantine, clear) goes through
read-modify-write **CAS** semantics. A mutator reads a snapshot
lock-free, applies its change, then revalidates the snapshot version
under the root ``flock`` before atomically replacing the file
(version + 1). A concurrent writer that moved the version first
forces a retry on a fresh snapshot — the mutator is re-applied, so no
update is ever lost (counted in :attr:`StoreStats.index_retries`).
Index content is a pure function of the committed entry set, so runs
that produce the same entries produce byte-identical index files
regardless of writer interleaving.

:meth:`ArtifactStore.verify` scrubs every entry with the same
validation the read path uses; ``repro store {stats,verify,gc}``
exposes it on the command line. Fault-injection hooks
(:func:`repro.faults.inject` at ``store.load``/``store.save``,
byte-corruption variants at ``store.load.bytes``/``store.save.bytes``)
let the chaos suite prove these guarantees under seeded failure
schedules.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from pathlib import Path

try:  # pragma: no cover - absent only on non-POSIX platforms
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

from repro.faults import inject, inject_bytes

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "config_digest",
    "code_version",
    "STORE_SCHEMA_VERSION",
]

ENV_STORE_DIR = "REPRO_ARTIFACT_DIR"
_PICKLE_PROTOCOL = 4

#: On-disk envelope marker + version. Entries written by an older (or
#: pre-envelope) library read as misses, never as wrong data. Version
#: 2 added the CRC32 payload checksum (payloads are stored as bytes).
_MAGIC = "repro-artifact"
STORE_SCHEMA_VERSION = 2

#: Quarantine subdirectory for corrupt entries (kept for post-mortem).
QUARANTINE_DIR = "quarantine"

#: Index file (store root) and its format marker.
INDEX_NAME = "index.json"
_INDEX_MAGIC = "repro-index"

#: CAS retry backstop. Version conflicts resolve in one retry unless
#: writers keep winning races; a bound this high only trips on a bug.
_INDEX_MAX_RETRIES = 100

#: Default age after which an orphaned ``*.tmp`` file is collectable:
#: long enough that no live writer still owns it.
DEFAULT_TMP_MAX_AGE_S = 3600.0

_code_version: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            # repro: lint-ok[REP002] hashes our own installed sources to
            # key cache entries; not part of any artifact's fault surface
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def config_digest(*sources: object) -> str:
    """Digest of configuration objects via their canonical ``repr``.

    All configuration types involved (frozen dataclasses, tuples,
    numbers, strings) have deterministic reprs, which keeps the digest
    stable across processes without custom serialization.
    """
    h = hashlib.sha256()
    for source in sources:
        h.update(repr(source).encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


@dataclass
class StoreStats:
    """Live counters of one :class:`ArtifactStore` instance.

    ``quarantined`` counts corrupt entries moved to ``quarantine/``,
    ``evicted`` counts stale (schema/version-drifted) entries removed,
    ``read_errors`` counts I/O failures on the read path (misses that
    leave the file in place).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    evicted: int = 0
    read_errors: int = 0
    #: Index CAS rounds lost to a concurrent writer (the mutation was
    #: re-applied on a fresh snapshot and committed — never dropped).
    index_retries: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-friendly counter snapshot."""
        return asdict(self)


class ArtifactStore:
    """Persistent, content-addressed, multi-process-safe report cache.

    Args:
        root: store directory. Defaults to ``$REPRO_ARTIFACT_DIR`` or
            ``~/.cache/repro/artifacts``.
        fsync: when True (default) every write is fsynced before its
            atomic rename (crash-safe); set False only for throwaway
            stores where durability does not matter.
    """

    def __init__(
        self, root: str | Path | None = None, *, fsync: bool = True
    ) -> None:
        if root is None:
            root = os.environ.get(ENV_STORE_DIR) or (
                Path.home() / ".cache" / "repro" / "artifacts"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self.stats = StoreStats()
        # Grid workers call load/save concurrently; counter updates are
        # read-modify-write and need the lock to stay exact.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(
        self, platform: str, model: str, dataset: str, digest: str
    ) -> str:
        """The content address of one grid cell's report."""
        raw = "|".join((code_version(), platform, model, dataset, digest))
        return hashlib.sha256(raw.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def quarantine_root(self) -> Path:
        return self.root / QUARANTINE_DIR

    # ------------------------------------------------------------------
    # Cross-process locking (advisory, per shard)
    # ------------------------------------------------------------------

    @contextmanager
    def _shard_lock(self, shard: Path):
        """Advisory exclusive lock serializing mutations of one shard.

        ``flock`` works across processes (and across threads, since
        every acquisition opens its own descriptor). On platforms
        without ``fcntl`` the lock degrades to a no-op — single-process
        atomicity still holds via ``os.replace``.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        shard.mkdir(parents=True, exist_ok=True)
        fd = os.open(shard / ".lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    # ------------------------------------------------------------------
    # Index (versioned, CAS read-modify-write)
    # ------------------------------------------------------------------

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    @contextmanager
    def _index_lock(self):
        """Advisory exclusive lock serializing index commits."""
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        fd = os.open(self.root / ".index.lock", os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)

    def _read_index(self) -> tuple[int, dict[str, dict]]:
        """Current ``(version, entries)``; an unreadable or malformed
        index reads as empty version 0 (advisory data, rebuildable by
        :meth:`verify`), never as an error."""
        try:
            # repro: lint-ok[REP002] advisory data: every read failure
            # already degrades to an empty index, so a fault site would
            # only re-prove the except clause below
            raw = json.loads(self.index_path.read_text())
        except (OSError, ValueError, UnicodeDecodeError):
            return 0, {}
        if (
            not isinstance(raw, dict)
            or raw.get("magic") != _INDEX_MAGIC
            or not isinstance(raw.get("version"), int)
            or not isinstance(raw.get("entries"), dict)
        ):
            return 0, {}
        return raw["version"], raw["entries"]

    def _write_index(self, version: int, entries: dict[str, dict]) -> None:
        """Atomically replace the index (caller holds the index lock).

        Keys are written sorted, so the file content is a pure function
        of ``(version, entry set)`` — independent of mutation order.
        """
        document = {
            "magic": _INDEX_MAGIC,
            "store_version": STORE_SCHEMA_VERSION,
            "version": version,
            "entries": {key: entries[key] for key in sorted(entries)},
        }
        # repro: lint-ok[REP002] index crash-safety is proven by the
        # rebuild path (verify), not by injection: an InjectedFault here
        # would escape the OSError handling that callers rely on and
        # turn advisory index damage into save() API changes
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".idx.tmp")
        try:
            # repro: lint-ok[REP002] same rationale as the mkstemp above
            with os.fdopen(fd, "w") as fh:
                json.dump(document, fh, sort_keys=True, indent=0)
                fh.flush()
                if self.fsync:
                    # repro: lint-ok[REP002] same rationale as above
                    os.fsync(fh.fileno())
            # repro: lint-ok[REP002] same rationale as above
            os.replace(tmp, self.index_path)
            if self.fsync:
                self._fsync_dir(self.root)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _mutate_index(self, mutator) -> None:
        """Commit one index mutation with CAS read-modify-write.

        The snapshot is read lock-free and the mutator applied to a
        copy; the commit revalidates the snapshot version under the
        index lock and writes ``version + 1`` atomically. If a
        concurrent writer advanced the version first, the round is
        counted in ``index_retries`` and the mutator is re-applied to
        a fresh snapshot — a lost race never loses the update.

        The index is advisory (entry files are the source of truth),
        so I/O failure here degrades to a stale index instead of
        failing the mutation that already committed its file; the next
        :meth:`verify` reconciles.
        """
        try:
            for _ in range(_INDEX_MAX_RETRIES):
                version, entries = self._read_index()
                mutated = {key: dict(meta) for key, meta in entries.items()}
                mutator(mutated)
                with self._index_lock():
                    current_version, _ = self._read_index()
                    if current_version != version:
                        self._count(index_retries=1)
                        continue
                    self._write_index(version + 1, mutated)
                    return
            raise RuntimeError(
                "index CAS retry budget exhausted"
            )  # pragma: no cover - requires a livelock bug
        except OSError:
            return

    def index(self) -> dict[str, dict]:
        """Snapshot of the committed-entry index ``{key: metadata}``."""
        return self._read_index()[1]

    def _index_put(self, key: str, schema: object) -> None:
        self._mutate_index(
            lambda entries: entries.__setitem__(
                key, {"schema": repr(schema)}
            )
        )

    def _index_drop(self, key: str) -> None:
        self._mutate_index(lambda entries: entries.pop(key, None))

    # ------------------------------------------------------------------
    # Envelope parsing (shared by load and verify)
    # ------------------------------------------------------------------

    def _parse(self, data: bytes, *, schema: object, check_schema: bool = True):
        """Classify raw entry bytes.

        Returns ``(verdict, payload)`` where verdict is ``"ok"``
        (payload valid), ``"corrupt"`` (unparseable envelope, checksum
        mismatch or unreadable payload — quarantine material) or
        ``"stale"`` (well-formed but version/schema-drifted — evict).
        """
        try:
            envelope = pickle.loads(data)
        except Exception:
            return "corrupt", None
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != _MAGIC
            or not isinstance(envelope.get("payload"), bytes)
            or not isinstance(envelope.get("crc32"), int)
        ):
            return "corrupt", None
        if envelope.get("store_version") != STORE_SCHEMA_VERSION or (
            check_schema and envelope.get("schema") != schema
        ):
            return "stale", None
        payload_bytes = envelope["payload"]
        if zlib.crc32(payload_bytes) != envelope["crc32"]:
            return "corrupt", None
        try:
            return "ok", pickle.loads(payload_bytes)
        except Exception:
            return "corrupt", None

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------

    def _count(self, **deltas: int) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _read(self, path: Path, key: str) -> bytes:
        """Read entry bytes, with injected read-error/corruption sites."""
        inject("store.load", key=key)
        with path.open("rb") as fh:
            data = fh.read()
        return inject_bytes("store.load.bytes", data, key=key)

    def _quarantine(self, path: Path) -> None:
        """Move one invalid entry to ``quarantine/`` (caller holds lock)."""
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_root / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_root / f"{path.name}.{suffix}"
        try:
            # repro: lint-ok[REP002] quarantine runs while a fault plan
            # is armed; the scrub path must not itself be injectable or
            # it could fail under the very faults it cleans up after
            os.replace(path, target)
        except FileNotFoundError:
            return
        self._count(quarantined=1)
        self._index_drop(path.stem)

    def load(self, key: str, *, schema: object = None):
        """The stored payload, or ``None`` on a miss (counted).

        Never returns untrusted data: the envelope, its schema tag and
        the CRC32 payload checksum must all validate. Invalid entries
        are re-read under the shard lock (so a concurrent writer's
        fresh replacement is served rather than destroyed) and then
        quarantined (corrupt) or evicted (stale). I/O errors reading
        the file are a plain miss that leaves the entry in place — a
        flaky read is not evidence of corruption.
        """
        path = self._path(key)
        try:
            data = self._read(path, key)
        except FileNotFoundError:
            self._count(misses=1)
            return None
        except Exception:
            self._count(misses=1, read_errors=1)
            return None
        verdict, payload = self._parse(data, schema=schema)
        if verdict == "ok":
            self._count(hits=1)
            return payload
        # The fast-path read is lock-free, so an invalid result may
        # just mean we raced a writer (or hit a transient injected
        # read corruption). Re-read under the shard lock before
        # condemning the file.
        with self._shard_lock(path.parent):
            try:
                data = self._read(path, key)
            except FileNotFoundError:
                self._count(misses=1)
                return None
            except Exception:
                self._count(misses=1, read_errors=1)
                return None
            verdict, payload = self._parse(data, schema=schema)
            if verdict == "ok":
                self._count(hits=1)
                return payload
            if verdict == "corrupt":
                self._quarantine(path)
            else:
                path.unlink(missing_ok=True)
                self._count(evicted=1)
                self._index_drop(key)
        self._count(misses=1)
        return None

    def save(self, key: str, payload: object, *, schema: object = None) -> None:
        """Persist one payload atomically and durably.

        The envelope carries a CRC32 of the payload bytes (computed
        before the write, so any later corruption — torn write, bit
        rot, injected fault — is detected on read). The temp file is
        fsynced before the atomic rename and the shard directory is
        fsynced after it, so a crash leaves either the old or the new
        complete entry. Raises on I/O failure: callers treat cache
        writes as best-effort.
        """
        inject("store.save", key=key)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload_bytes = pickle.dumps(payload, protocol=_PICKLE_PROTOCOL)
        envelope = {
            "magic": _MAGIC,
            "store_version": STORE_SCHEMA_VERSION,
            "schema": schema,
            "crc32": zlib.crc32(payload_bytes),
            # The corruption site sits between checksum and write, so
            # injected corruption lands on disk but never validates.
            "payload": inject_bytes(
                "store.save.bytes", payload_bytes, key=key
            ),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=_PICKLE_PROTOCOL)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            with self._shard_lock(path.parent):
                os.replace(tmp, path)
            if self.fsync:
                self._fsync_dir(path.parent)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._count(puts=1)
        self._index_put(key, schema)

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Make a rename durable (directory entry fsync)."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            # repro: lint-ok[REP002] best-effort durability tail; every
            # OSError is swallowed, so injection could prove nothing
            os.fsync(fd)
        except OSError:  # pragma: no cover
            pass
        finally:
            os.close(fd)

    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether a file existed."""
        path = self._path(key)
        with self._shard_lock(path.parent):
            existed = path.exists()
            path.unlink(missing_ok=True)
        if existed:
            self._index_drop(key)
        return existed

    # ------------------------------------------------------------------
    # Maintenance: iteration, GC, scrubbing
    # ------------------------------------------------------------------

    def _entries(self):
        """Every committed entry file (orphaned ``*.tmp`` excluded)."""
        for path in self.root.glob("*/*.pkl"):
            if path.parent.name != QUARANTINE_DIR:
                yield path

    def _tmp_files(self):
        yield from self.root.glob("*/*.tmp")
        # Index temp debris lives at the root (same crashed-writer shape).
        yield from self.root.glob("*.idx.tmp")

    def __len__(self) -> int:
        """Committed entries only — never counts writer temp files."""
        return sum(1 for _ in self._entries())

    def clear(self) -> int:
        """Delete every entry; returns how many entries were removed.

        Also sweeps orphaned ``*.tmp`` files (not counted — they were
        never committed entries), so the total is accurate even after
        a crashed writer.
        """
        removed = 0
        for path in self._entries():
            with self._shard_lock(path.parent):
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
            removed += 1
        for tmp in self._tmp_files():
            tmp.unlink(missing_ok=True)
        self._mutate_index(lambda entries: entries.clear())
        return removed

    def gc(
        self,
        *,
        tmp_max_age_s: float = DEFAULT_TMP_MAX_AGE_S,
        purge_quarantine: bool = False,
    ) -> dict[str, int]:
        """Collect crash debris; returns removal counts.

        Removes ``*.tmp`` files older than ``tmp_max_age_s`` (left by
        writers killed between ``mkstemp`` and ``os.replace``) and,
        when ``purge_quarantine`` is set, the quarantined corpses.
        """
        # repro: lint-ok[REP001] tmp-file age is genuinely wall-clock:
        # gc sweeps debris left behind by *other* crashed processes
        now = time.time()
        tmp_removed = 0
        for tmp in self._tmp_files():
            try:
                age = now - tmp.stat().st_mtime
            except FileNotFoundError:
                continue
            if age >= tmp_max_age_s:
                tmp.unlink(missing_ok=True)
                tmp_removed += 1
        quarantine_removed = 0
        if purge_quarantine and self.quarantine_root.is_dir():
            for corpse in self.quarantine_root.iterdir():
                if corpse.name == ".lock":
                    continue
                corpse.unlink(missing_ok=True)
                quarantine_removed += 1
        return {
            "tmp_removed": tmp_removed,
            "quarantine_removed": quarantine_removed,
        }

    def verify(self) -> dict[str, int]:
        """Scrub every entry with the read path's validation.

        Corrupt entries (bad envelope/checksum) are quarantined, stale
        ones (store-version drift) evicted; the returned counts make
        ``repro store verify`` scriptable. Schema *tags* are opaque to
        the scrub (they belong to the writing layer), so entries with
        any tag count as ok when their bytes validate.

        The scrub doubles as the index repair path: the index is
        rebuilt from the surviving entries, reconciling any drift a
        crashed or raced writer left behind.
        """
        checked = ok = quarantined = evicted = 0
        surviving: dict[str, dict] = {}
        for path in sorted(self._entries()):
            checked += 1
            with self._shard_lock(path.parent):
                try:
                    # repro: lint-ok[REP002] the scrubber must keep
                    # reading raw bytes while a fault plan is armed;
                    # real read failures land in read_errors below
                    data = path.read_bytes()
                except FileNotFoundError:
                    checked -= 1
                    continue
                except OSError:
                    self._count(read_errors=1)
                    continue
                verdict, _ = self._parse(
                    data, schema=None, check_schema=False
                )
                if verdict == "ok":
                    ok += 1
                    schema = pickle.loads(data).get("schema")
                    surviving[path.stem] = {"schema": repr(schema)}
                elif verdict == "corrupt":
                    self._quarantine(path)
                    quarantined += 1
                else:
                    path.unlink(missing_ok=True)
                    self._count(evicted=1)
                    self._index_drop(path.stem)
                    evicted += 1

        def reconcile(entries: dict[str, dict]) -> None:
            entries.clear()
            entries.update(surviving)

        self._mutate_index(reconcile)
        return {
            "checked": checked,
            "ok": ok,
            "quarantined": quarantined,
            "evicted": evicted,
        }

    def disk_stats(self) -> dict[str, object]:
        """On-disk inventory (as opposed to the live :attr:`stats`)."""
        entries = 0
        total_bytes = 0
        for path in self._entries():
            try:
                total_bytes += path.stat().st_size
            except FileNotFoundError:
                continue
            entries += 1
        quarantined = 0
        if self.quarantine_root.is_dir():
            quarantined = sum(
                1
                for p in self.quarantine_root.iterdir()
                if p.name != ".lock"
            )
        return {
            "root": str(self.root),
            "entries": entries,
            "bytes": total_bytes,
            "tmp_files": sum(1 for _ in self._tmp_files()),
            "quarantined": quarantined,
            "indexed": len(self.index()),
        }
