"""Content-addressed on-disk store for simulation reports.

Every grid cell is addressed by the SHA-256 of
``(code version, platform, model, dataset, config digest)``:

- *code version* is a digest over the contents of every ``repro``
  source file, so editing any simulator invalidates the whole store
  without manual cache busting;
- *config digest* covers the ``repr`` of the configuration objects the
  platform actually reads (plus dataset seed/scale), so changing a
  buffer size or the model width misses cleanly while unrelated
  platforms keep their entries.

Payloads are pickled under ``$REPRO_ARTIFACT_DIR`` (default
``~/.cache/repro/artifacts``), sharded by key prefix, inside a
schema-versioned envelope: corrupt, truncated, pre-envelope or
schema-mismatched files are treated as a cache miss (the entry is
deleted and recomputed) rather than raised. Writes are atomic (temp
file + ``os.replace``), so concurrent grid workers and repeated CLI
invocations can share one store.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ArtifactStore",
    "StoreStats",
    "config_digest",
    "code_version",
    "STORE_SCHEMA_VERSION",
]

ENV_STORE_DIR = "REPRO_ARTIFACT_DIR"
_PICKLE_PROTOCOL = 4

#: On-disk envelope marker + version. Entries written by an older (or
#: pre-envelope) library read as misses, never as wrong data.
_MAGIC = "repro-artifact"
STORE_SCHEMA_VERSION = 1

_code_version: str | None = None


def code_version() -> str:
    """Digest of the ``repro`` package sources (cached per process)."""
    global _code_version
    if _code_version is None:
        import repro

        pkg_root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(pkg_root.rglob("*.py")):
            h.update(str(path.relative_to(pkg_root)).encode())
            h.update(b"\0")
            h.update(path.read_bytes())
        _code_version = h.hexdigest()[:16]
    return _code_version


def config_digest(*sources: object) -> str:
    """Digest of configuration objects via their canonical ``repr``.

    All configuration types involved (frozen dataclasses, tuples,
    numbers, strings) have deterministic reprs, which keeps the digest
    stable across processes without custom serialization.
    """
    h = hashlib.sha256()
    for source in sources:
        h.update(repr(source).encode())
        h.update(b"\0")
    return h.hexdigest()[:16]


@dataclass
class StoreStats:
    """Hit/miss/write counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0


class ArtifactStore:
    """Persistent, content-addressed report cache.

    Args:
        root: store directory. Defaults to ``$REPRO_ARTIFACT_DIR`` or
            ``~/.cache/repro/artifacts``.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get(ENV_STORE_DIR) or (
                Path.home() / ".cache" / "repro" / "artifacts"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()
        # Grid workers call load/save concurrently; counter updates are
        # read-modify-write and need the lock to stay exact.
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------

    def key_for(
        self, platform: str, model: str, dataset: str, digest: str
    ) -> str:
        """The content address of one grid cell's report."""
        raw = "|".join((code_version(), platform, model, dataset, digest))
        return hashlib.sha256(raw.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def _miss(self) -> None:
        with self._stats_lock:
            self.stats.misses += 1

    def load(self, key: str, *, schema: object = None):
        """The stored payload, or ``None`` on a miss (counted).

        A miss is anything that cannot be trusted: no file, a corrupt
        or truncated pickle, a pre-envelope entry, a different
        ``STORE_SCHEMA_VERSION``, or an envelope whose ``schema`` tag
        differs from the caller's. Every such file is deleted so the
        caller recomputes once and the next load is a clean miss.
        """
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                envelope = pickle.load(fh)
        except FileNotFoundError:
            self._miss()
            return None
        except Exception:
            # Corrupt or unreadable entry: drop it and treat as a miss.
            path.unlink(missing_ok=True)
            self._miss()
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("magic") != _MAGIC
            or envelope.get("store_version") != STORE_SCHEMA_VERSION
            or envelope.get("schema") != schema
        ):
            path.unlink(missing_ok=True)
            self._miss()
            return None
        with self._stats_lock:
            self.stats.hits += 1
        return envelope["payload"]

    def save(self, key: str, payload: object, *, schema: object = None) -> None:
        """Persist one payload atomically inside the schema envelope."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "magic": _MAGIC,
            "store_version": STORE_SCHEMA_VERSION,
            "schema": schema,
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(envelope, fh, protocol=_PICKLE_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._stats_lock:
            self.stats.puts += 1

    def delete(self, key: str) -> bool:
        """Drop one entry; returns whether a file existed."""
        path = self._path(key)
        existed = path.exists()
        path.unlink(missing_ok=True)
        return existed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
