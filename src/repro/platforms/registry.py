"""Decorator-based platform registry.

Adding a platform to the whole evaluation stack (suite, CLI,
benchmarks, artifact store) is one decorator on one class::

    from repro.platforms import Platform, register_platform

    @register_platform("a100-2x")
    class DoubledA100(GPUPlatform):
        gpu_config = dataclasses.replace(A100, mem_bw_gbps=3110.0)

The four paper platforms register themselves from the layers that own
their simulators (:mod:`repro.gpu.platform`,
:mod:`repro.accelerator.platform`, :mod:`repro.frontend.platform`);
those modules are imported lazily on first lookup so importing
:mod:`repro.platforms` stays cheap.
"""

from __future__ import annotations

from repro.platforms.base import Platform, PlatformContext

__all__ = [
    "register_platform",
    "unregister_platform",
    "get_platform_class",
    "create_platform",
    "platform_names",
]

_REGISTRY: dict[str, type[Platform]] = {}
_builtins_loaded = False

#: Adapter modules of the paper platforms; their own register_platform
#: calls must not recurse into _ensure_builtins mid-import.
_BUILTIN_MODULES = (
    "repro.gpu.platform",  # registers t4, a100
    "repro.accelerator.platform",  # registers hihgnn
    "repro.frontend.platform",  # registers hihgnn+gdr
)


def _ensure_builtins() -> None:
    """Import the adapter modules of the four paper platforms once."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    # Import order fixes registry (and hence report-column) order. The
    # flag is only set once all three imports succeed, so a failure
    # surfaces again on the next lookup instead of leaving a silently
    # partial registry.
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def register_platform(name: str):
    """Class decorator registering a :class:`Platform` subclass."""

    def decorator(cls: type[Platform]) -> type[Platform]:
        # Load the builtin entries first so registering over a builtin
        # name collides here, at the user's decorator, rather than
        # poisoning the registry for every later lookup. Builtin
        # adapters skip this (they register during that very load).
        if cls.__module__ not in _BUILTIN_MODULES:
            _ensure_builtins()
        key = name.lower()
        if key in _REGISTRY:
            raise ValueError(
                f"platform {name!r} is already registered "
                f"(by {_REGISTRY[key].__qualname__})"
            )
        if not (isinstance(cls, type) and issubclass(cls, Platform)):
            raise TypeError(
                f"@register_platform({name!r}) needs a Platform subclass, "
                f"got {cls!r}"
            )
        cls.name = key
        _REGISTRY[key] = cls
        return cls

    return decorator


def unregister_platform(name: str) -> None:
    """Remove a registered platform (experiment/test cleanup)."""
    _REGISTRY.pop(name.lower(), None)


def platform_names() -> tuple[str, ...]:
    """All registered platform names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def get_platform_class(name: str) -> type[Platform]:
    """Look up a platform class; raises ``ValueError`` when unknown."""
    _ensure_builtins()
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ValueError(f"unknown platform {name!r}; known: {known}") from None


def create_platform(
    name: str, context: PlatformContext | None = None
) -> Platform:
    """Instantiate a registered platform with the given configuration."""
    return get_platform_class(name)(context)
