"""Declarative experiment specification.

An :class:`ExperimentSpec` is the single description of *what* to run:
the platform x model x dataset grid plus the knobs that change its
numbers (seed, scale, accelerator / frontend / model configuration).
It is validated eagerly against the platform registry, the dataset
catalog and the model registry, so a typo fails at construction — not
three minutes into a simulation — and it round-trips losslessly
through ``to_dict()`` / ``from_dict()`` (plain JSON-serializable
types), so specs can be stored in files, sent over the wire and
compared for equality.

Execution lives elsewhere: hand a spec to
:class:`repro.api.session.Session` to obtain typed results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.accelerator.config import HiHGNNConfig
from repro.api.results import SchemaMismatchError
from repro.frontend.config import GDRConfig
from repro.memory.dram import HBMConfig
from repro.models.base import ModelConfig
from repro.models.workload import MODEL_REGISTRY
from repro.platforms.base import PlatformContext

__all__ = ["ExperimentSpec", "DEFAULT_PLATFORMS", "SPEC_SCHEMA_VERSION"]

#: Version stamp embedded in every serialized spec. Bump on any change
#: to the dict layout so stale payloads are rejected instead of being
#: silently misread.
SPEC_SCHEMA_VERSION = 1

#: The four platforms of the paper's §5 comparison, in report-column
#: order (any ``@register_platform`` name is equally valid in a spec).
DEFAULT_PLATFORMS = ("t4", "a100", "hihgnn", "hihgnn+gdr")

GridKey = tuple[str, str, str]


def _as_tuple(value: str | Iterable[str]) -> tuple[str, ...]:
    if isinstance(value, str):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class ExperimentSpec:
    """What to run and at what fidelity — nothing about *how* to run it.

    Attributes:
        platforms: registry names of the execution targets (columns).
        models: HGNN model names (case-insensitive, ``-``/``_`` alias).
        datasets: synthetic dataset names from the Table 2 catalog
            and/or scenario references (``family:key=value,...``) from
            the scenario registry; scenario refs are stored in
            canonical form.
        seed: dataset generation seed.
        scale: dataset scale factor; ``1.0`` is the published size,
            smaller values shrink every vertex set for quick runs.
        accelerator: HiHGNN architectural parameters (Table 3).
        frontend: GDR-HGNN frontend parameters (Table 3).
        model_config: model hyper-parameters shared by all models.
    """

    platforms: tuple[str, ...] = DEFAULT_PLATFORMS
    models: tuple[str, ...] = ("rgcn", "rgat", "simple_hgn")
    datasets: tuple[str, ...] = ("acm", "imdb", "dblp")
    seed: int = 1
    scale: float = 1.0
    accelerator: HiHGNNConfig = field(default_factory=HiHGNNConfig)
    frontend: GDRConfig = field(default_factory=GDRConfig)
    model_config: ModelConfig = field(default_factory=ModelConfig)

    def __post_init__(self) -> None:
        object.__setattr__(self, "platforms", _as_tuple(self.platforms))
        object.__setattr__(self, "models", _as_tuple(self.models))
        object.__setattr__(self, "datasets", _as_tuple(self.datasets))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        for axis in ("platforms", "models", "datasets"):
            if not getattr(self, axis):
                raise ValueError(f"spec {axis} must not be empty")
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        # Datasets accept catalog names and scenario references alike;
        # scenario refs are canonicalized (parameter order, defaults,
        # value spelling) so equivalent spellings share one grid cell,
        # one workspace artifact set and one store address.
        from repro.scenarios import canonical_workload

        object.__setattr__(
            self,
            "datasets",
            tuple(canonical_workload(dataset) for dataset in self.datasets),
        )
        for model in self.models:
            if model.lower().replace("-", "_") not in MODEL_REGISTRY:
                known = ", ".join(sorted(MODEL_REGISTRY))
                raise ValueError(
                    f"unknown model {model!r}; known models: {known}"
                )
        # Resolving through the registry accepts experiment-registered
        # variants, not just the four paper platforms.
        from repro.platforms.registry import get_platform_class

        for platform in self.platforms:
            get_platform_class(platform)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def context(self) -> PlatformContext:
        """The configuration bundle handed to platform adapters."""
        return PlatformContext(
            accelerator=self.accelerator,
            frontend=self.frontend,
            model_config=self.model_config,
        )

    def cells(self) -> Iterator[GridKey]:
        """Grid cells in canonical order (platform-major, deduplicated)."""
        return iter(
            dict.fromkeys(
                (p, m, d)
                for p in self.platforms
                for m in self.models
                for d in self.datasets
            )
        )

    @property
    def grid_size(self) -> int:
        """Number of distinct grid cells this spec describes."""
        return sum(1 for _ in self.cells())

    def replace(self, **overrides: Any) -> "ExperimentSpec":
        """A copy with fields overridden (re-validated eagerly)."""
        return dataclasses.replace(self, **overrides)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "schema_version": SPEC_SCHEMA_VERSION,
            "platforms": list(self.platforms),
            "models": list(self.models),
            "datasets": list(self.datasets),
            "seed": self.seed,
            "scale": self.scale,
            "accelerator": dataclasses.asdict(self.accelerator),
            "frontend": dataclasses.asdict(self.frontend),
            "model_config": dataclasses.asdict(self.model_config),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ExperimentSpec":
        """Rebuild (and re-validate) a spec from :meth:`to_dict` output."""
        if not isinstance(payload, dict):
            raise SchemaMismatchError(
                f"spec payload must be a dict, got {type(payload).__name__}"
            )
        version = payload.get("schema_version")
        if version != SPEC_SCHEMA_VERSION:
            raise SchemaMismatchError(
                f"spec schema_version mismatch: payload has {version!r}, "
                f"this library reads {SPEC_SCHEMA_VERSION}"
            )
        kwargs: dict[str, Any] = {}
        for axis in ("platforms", "models", "datasets"):
            if axis in payload:
                kwargs[axis] = tuple(payload[axis])
        for scalar in ("seed", "scale"):
            if scalar in payload:
                kwargs[scalar] = payload[scalar]
        if "accelerator" in payload:
            accel = dict(payload["accelerator"])
            if "hbm" in accel:
                accel["hbm"] = HBMConfig(**accel["hbm"])
            kwargs["accelerator"] = HiHGNNConfig(**accel)
        if "frontend" in payload:
            kwargs["frontend"] = GDRConfig(**payload["frontend"])
        if "model_config" in payload:
            kwargs["model_config"] = ModelConfig(**payload["model_config"])
        return cls(**kwargs)
