"""Typed, schema-versioned result objects.

Every number the evaluation produces flows through the types in this
module instead of anonymous nested dicts:

- :class:`CellResult` — one platform x model x dataset simulation,
  normalized over the GPU and accelerator report vocabularies.
- :class:`GridResult` — an ordered grid of cells plus the spec that
  produced them, with derived per-figure reports and slicing.
- :class:`MetricReport` (:class:`SpeedupReport`,
  :class:`DramTrafficReport`, :class:`BandwidthReport`) — one
  Fig. 7/8/9-style table: per model/dataset/platform values plus the
  per-platform GEOMEAN bar.
- :class:`ThrashingReport` — Fig. 2 replacement statistics.
- :class:`DatasetStatsReport`, :class:`SystemConfigReport`,
  :class:`AreaReport`, :class:`RestructureReport` — the remaining CLI
  surfaces.

Each type serializes with ``to_dict()`` to plain JSON-compatible
values, embeds ``schema_version`` and rebuilds exactly (bit-identical
floats) with ``from_dict()``, so results can be persisted in the
artifact store, emitted by ``--format json`` and consumed by other
programs without re-running a single simulation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Mapping

from repro.platforms.failures import CellFailure

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.spec import ExperimentSpec

__all__ = [
    "CellFailure",
    "RESULT_SCHEMA_VERSION",
    "SchemaMismatchError",
    "geomean",
    "CellResult",
    "GridResult",
    "MetricReport",
    "SpeedupReport",
    "DramTrafficReport",
    "BandwidthReport",
    "metric_report_from_dict",
    "ThrashingReport",
    "DatasetStatRow",
    "DatasetStatsReport",
    "SystemConfigReport",
    "AreaComponent",
    "AreaReport",
    "RestructureRelationRow",
    "RestructureReport",
]

#: Version stamp embedded in every serialized result. Bump on any
#: layout change; readers reject (and stores recompute) older payloads.
RESULT_SCHEMA_VERSION = 1

GridKey = tuple[str, str, str]


class SchemaMismatchError(ValueError):
    """A serialized result payload has the wrong shape or version."""


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's GEOMEAN bars)."""
    if not values:
        raise ValueError("geomean of an empty list")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def _require_schema(payload: Any, kind: str) -> dict:
    if not isinstance(payload, dict):
        raise SchemaMismatchError(
            f"{kind} payload must be a dict, got {type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if version != RESULT_SCHEMA_VERSION:
        raise SchemaMismatchError(
            f"{kind} schema_version mismatch: payload has {version!r}, "
            f"this library reads {RESULT_SCHEMA_VERSION}"
        )
    return payload


def _opt_float(value: object) -> float | None:
    return None if value is None else float(value)  # type: ignore[arg-type]


def _opt_int(value: object) -> int | None:
    return None if value is None else int(value)  # type: ignore[call-overload]


# ----------------------------------------------------------------------
# Cell
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CellResult:
    """One grid cell, normalized over GPU and accelerator reports.

    GPU-only fields (``na_l2_hit_ratio``, ``kernel_launches``) and
    accelerator-only fields (``na_hit_ratio``, ``total_cycles``,
    ``frontend_cycles``) are ``None`` on the other platform kind; the
    shared core (time, DRAM traffic, bandwidth) is always present.

    ``status`` is ``"ok"`` for a completed simulation and ``"failed"``
    for a cell whose terminal failure was collected
    (``on_error="collect"``); failed cells carry the typed
    :class:`~repro.platforms.failures.CellFailure` in ``failure`` and
    zeros in the numeric core. Failed cells are never persisted to the
    artifact store, and serialization omits the two fields entirely on
    the ``"ok"`` path (payloads of healthy runs are bit-identical to
    pre-failure-aware versions).
    """

    platform: str
    model: str
    dataset: str
    time_ms: float
    dram_accesses: int
    dram_bytes: int
    bandwidth_utilization: float
    na_hit_ratio: float | None = None
    na_l2_hit_ratio: float | None = None
    total_cycles: int | None = None
    frontend_cycles: int | None = None
    kernel_launches: int | None = None
    status: str = "ok"
    failure: CellFailure | None = None

    @property
    def key(self) -> GridKey:
        """The grid coordinate ``(platform, model, dataset)``."""
        return (self.platform, self.model, self.dataset)

    @property
    def ok(self) -> bool:
        """Whether this cell completed (vs. a collected failure)."""
        return self.status == "ok"

    @classmethod
    def from_failure(cls, failure: CellFailure) -> "CellResult":
        """A ``status="failed"`` cell wrapping a typed failure."""
        return cls(
            platform=failure.platform,
            model=failure.model,
            dataset=failure.dataset,
            time_ms=0.0,
            dram_accesses=0,
            dram_bytes=0,
            bandwidth_utilization=0.0,
            status="failed",
            failure=failure,
        )

    def speedup_over(self, baseline: "CellResult") -> float:
        """How much faster this cell ran than ``baseline`` (wall time)."""
        if self.time_ms <= 0:
            return float("inf")
        return baseline.time_ms / self.time_ms

    @classmethod
    def from_report(cls, report: Any) -> "CellResult":
        """Normalize a raw simulator report (either platform kind).

        Values are coerced to built-in ``int``/``float`` so numpy
        scalars never leak into serialized payloads.
        """
        return cls(
            platform=str(report.platform),
            model=str(report.model),
            dataset=str(report.dataset),
            time_ms=float(report.time_ms),
            dram_accesses=int(report.dram_accesses),
            dram_bytes=int(report.dram_bytes),
            bandwidth_utilization=float(report.bandwidth_utilization),
            na_hit_ratio=_opt_float(getattr(report, "na_hit_ratio", None)),
            na_l2_hit_ratio=_opt_float(
                getattr(report, "na_l2_hit_ratio", None)
            ),
            total_cycles=_opt_int(getattr(report, "total_cycles", None)),
            frontend_cycles=_opt_int(
                getattr(report, "frontend_cycles", None)
            ),
            kernel_launches=_opt_int(
                getattr(report, "kernel_launches", None)
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "schema_version": RESULT_SCHEMA_VERSION,
            "platform": self.platform,
            "model": self.model,
            "dataset": self.dataset,
            "time_ms": self.time_ms,
            "dram_accesses": self.dram_accesses,
            "dram_bytes": self.dram_bytes,
            "bandwidth_utilization": self.bandwidth_utilization,
            "na_hit_ratio": self.na_hit_ratio,
            "na_l2_hit_ratio": self.na_l2_hit_ratio,
            "total_cycles": self.total_cycles,
            "frontend_cycles": self.frontend_cycles,
            "kernel_launches": self.kernel_launches,
        }
        # Healthy payloads stay bit-identical to pre-failure-aware
        # versions (store entries, JSON goldens); the failure block
        # appears only when there is one.
        if self.status != "ok":
            payload["status"] = self.status
            payload["failure"] = (
                None if self.failure is None else self.failure.to_dict()
            )
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CellResult":
        payload = _require_schema(payload, "CellResult")
        failure = payload.get("failure")
        return cls(
            platform=str(payload["platform"]),
            model=str(payload["model"]),
            dataset=str(payload["dataset"]),
            time_ms=float(payload["time_ms"]),
            dram_accesses=int(payload["dram_accesses"]),
            dram_bytes=int(payload["dram_bytes"]),
            bandwidth_utilization=float(payload["bandwidth_utilization"]),
            na_hit_ratio=_opt_float(payload.get("na_hit_ratio")),
            na_l2_hit_ratio=_opt_float(payload.get("na_l2_hit_ratio")),
            total_cycles=_opt_int(payload.get("total_cycles")),
            frontend_cycles=_opt_int(payload.get("frontend_cycles")),
            kernel_launches=_opt_int(payload.get("kernel_launches")),
            status=str(payload.get("status", "ok")),
            failure=None if failure is None else CellFailure.from_dict(failure),
        )


# ----------------------------------------------------------------------
# Figure 7/8/9-style metric tables
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class MetricReport:
    """One metric over the grid: values per cell + per-platform GEOMEAN.

    ``report[model][dataset][platform]`` and
    ``report["GEOMEAN"]["all"][platform]`` keep working for callers of
    the pre-API nested-dict tables.
    """

    kind: ClassVar[str] = "metric"

    baseline: str | None
    platforms: tuple[str, ...]
    models: tuple[str, ...]
    datasets: tuple[str, ...]
    values: dict[str, dict[str, dict[str, float]]]
    geomean_by_platform: dict[str, float]

    @staticmethod
    def _metric(cell: CellResult, baseline: CellResult | None) -> float:
        raise NotImplementedError

    @classmethod
    def from_cells(
        cls,
        cells: Mapping[GridKey, CellResult],
        *,
        models: tuple[str, ...],
        datasets: tuple[str, ...],
        platforms: tuple[str, ...],
        baseline: str | None = None,
        skip_missing: bool = False,
    ) -> "MetricReport":
        """Build the table from a cell map (must contain the baseline).

        With ``skip_missing`` the table degrades gracefully over the
        surviving cells of a partially failed grid: a (model, dataset)
        row with a missing/failed baseline is dropped entirely, a row
        missing some platform keeps the surviving columns, and the
        GEOMEAN bar of each platform aggregates whatever rows it has
        (platforms with no surviving cells get no bar). Without it
        (the default) any missing cell raises, bit-identical to the
        strict historical behavior.
        """

        def lookup(key: GridKey) -> CellResult | None:
            cell = cells.get(key)
            if cell is not None and not cell.ok:
                return None
            return cell

        values: dict[str, dict[str, dict[str, float]]] = {}
        for model in models:
            values[model] = {}
            for dataset in datasets:
                base = None
                if baseline is not None:
                    base = lookup((baseline, model, dataset))
                    if base is None:
                        if skip_missing:
                            continue
                        raise ValueError(
                            f"baseline cell ({baseline!r}, {model!r}, "
                            f"{dataset!r}) missing from the result set"
                        )
                row = {}
                for p in platforms:
                    cell = lookup((p, model, dataset))
                    if cell is None:
                        if skip_missing:
                            continue
                        raise ValueError(
                            f"cell ({p!r}, {model!r}, {dataset!r}) "
                            "missing from the result set"
                        )
                    row[p] = float(cls._metric(cell, base))
                if row:
                    values[model][dataset] = row
        geo = {}
        for p in platforms:
            samples = [
                row[p]
                for per_model in values.values()
                for row in per_model.values()
                if p in row
            ]
            if samples:
                geo[p] = geomean(samples)
        if not geo:
            raise ValueError(
                "no surviving cells to report on: every grid cell "
                "failed or is missing"
            )
        return cls(
            baseline=baseline,
            platforms=tuple(platforms),
            models=tuple(models),
            datasets=tuple(datasets),
            values=values,
            geomean_by_platform=geo,
        )

    def value(self, platform: str, model: str, dataset: str) -> float:
        return self.values[model][dataset][platform]

    def geomean(self, platform: str) -> float:
        """The GEOMEAN bar of one platform."""
        return self.geomean_by_platform[platform]

    def __getitem__(self, key: str) -> dict[str, dict[str, float]]:
        if key == "GEOMEAN":
            return {"all": dict(self.geomean_by_platform)}
        return self.values[key]

    def __iter__(self) -> Iterator[str]:
        yield from self.values
        yield "GEOMEAN"

    def __contains__(self, key: str) -> bool:
        return key == "GEOMEAN" or key in self.values

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "kind": self.kind,
            "baseline": self.baseline,
            "platforms": list(self.platforms),
            "models": list(self.models),
            "datasets": list(self.datasets),
            "values": {
                m: {d: dict(row) for d, row in per_model.items()}
                for m, per_model in self.values.items()
            },
            "geomean": dict(self.geomean_by_platform),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "MetricReport":
        payload = _require_schema(payload, cls.__name__)
        if payload.get("kind") != cls.kind:
            raise SchemaMismatchError(
                f"expected kind {cls.kind!r}, got {payload.get('kind')!r}"
            )
        return cls(
            baseline=payload["baseline"],
            platforms=tuple(payload["platforms"]),
            models=tuple(payload["models"]),
            datasets=tuple(payload["datasets"]),
            values={
                m: {
                    d: {p: float(v) for p, v in row.items()}
                    for d, row in per_model.items()
                }
                for m, per_model in payload["values"].items()
            },
            geomean_by_platform={
                p: float(v) for p, v in payload["geomean"].items()
            },
        )


@dataclass(frozen=True)
class SpeedupReport(MetricReport):
    """Fig. 7: wall-time speedup relative to the baseline platform."""

    kind: ClassVar[str] = "speedup"

    @staticmethod
    def _metric(cell: CellResult, baseline: CellResult | None) -> float:
        assert baseline is not None
        return cell.speedup_over(baseline)


@dataclass(frozen=True)
class DramTrafficReport(MetricReport):
    """Fig. 8: DRAM access count normalized to the baseline platform."""

    kind: ClassVar[str] = "dram_accesses"

    @staticmethod
    def _metric(cell: CellResult, baseline: CellResult | None) -> float:
        assert baseline is not None
        return cell.dram_accesses / max(baseline.dram_accesses, 1)


@dataclass(frozen=True)
class BandwidthReport(MetricReport):
    """Fig. 9: achieved fraction of peak DRAM bandwidth (absolute)."""

    kind: ClassVar[str] = "bandwidth_utilization"

    @staticmethod
    def _metric(cell: CellResult, baseline: CellResult | None) -> float:
        return cell.bandwidth_utilization


_METRIC_KINDS: dict[str, type[MetricReport]] = {
    cls.kind: cls
    for cls in (SpeedupReport, DramTrafficReport, BandwidthReport)
}


def metric_report_from_dict(payload: dict[str, Any]) -> MetricReport:
    """Rebuild the right :class:`MetricReport` subclass from a payload."""
    kind = payload.get("kind") if isinstance(payload, dict) else None
    try:
        cls = _METRIC_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(_METRIC_KINDS))
        raise SchemaMismatchError(
            f"unknown metric report kind {kind!r}; known: {known}"
        ) from None
    return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Grid
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class GridResult:
    """Every cell of one executed spec, in the spec's canonical order."""

    spec: "ExperimentSpec"
    cells: tuple[CellResult, ...]

    @cached_property
    def _by_key(self) -> dict[GridKey, CellResult]:
        return {cell.key: cell for cell in self.cells}

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    def cell(self, platform: str, model: str, dataset: str) -> CellResult:
        """The result of one grid coordinate (``KeyError`` if absent)."""
        return self._by_key[(platform, model, dataset)]

    def platform_slice(self, platform: str) -> tuple[CellResult, ...]:
        """All cells of one platform, in grid order."""
        return tuple(c for c in self.cells if c.platform == platform)

    @property
    def failures(self) -> tuple[CellResult, ...]:
        """The failed cells (``status="failed"``), in grid order."""
        return tuple(c for c in self.cells if not c.ok)

    @property
    def ok(self) -> bool:
        """Whether every cell of the grid completed."""
        return all(c.ok for c in self.cells)

    def surviving(self) -> dict[GridKey, CellResult]:
        """The completed cells, keyed by grid coordinate."""
        return {c.key: c for c in self.cells if c.ok}

    def subset(
        self,
        *,
        platforms: tuple[str, ...] | None = None,
        models: tuple[str, ...] | None = None,
        datasets: tuple[str, ...] | None = None,
    ) -> "GridResult":
        """A smaller grid over already-computed cells (no re-running)."""
        spec = self.spec.replace(
            **{
                axis: value
                for axis, value in (
                    ("platforms", platforms),
                    ("models", models),
                    ("datasets", datasets),
                )
                if value is not None
            }
        )
        try:
            cells = tuple(self._by_key[k] for k in spec.cells())
        except KeyError as exc:
            raise ValueError(
                f"cell {exc.args[0]!r} is not part of this grid"
            ) from None
        return GridResult(spec=spec, cells=cells)

    # -- derived figure reports ----------------------------------------

    def _report(
        self, cls: type[MetricReport], baseline: str | None
    ) -> MetricReport:
        if baseline is not None and baseline not in {
            c.platform for c in self.cells
        }:
            raise ValueError(
                f"baseline platform {baseline!r} is not part of this grid; "
                "include it in the spec's platforms"
            )
        # A fully healthy grid takes the strict path (bit-identical to
        # the historical tables); a partially failed one degrades
        # gracefully over the surviving cells.
        return cls.from_cells(
            self._by_key,
            models=self.spec.models,
            datasets=self.spec.datasets,
            platforms=self.spec.platforms,
            baseline=baseline,
            skip_missing=not self.ok,
        )

    def speedup(self, baseline: str = "t4") -> SpeedupReport:
        """Fig. 7: speedup over ``baseline`` + GEOMEAN bars."""
        return self._report(SpeedupReport, baseline)

    def dram_traffic(self, baseline: str = "t4") -> DramTrafficReport:
        """Fig. 8: DRAM accesses normalized to ``baseline``."""
        return self._report(DramTrafficReport, baseline)

    def bandwidth(self) -> BandwidthReport:
        """Fig. 9: DRAM bandwidth utilization."""
        return self._report(BandwidthReport, None)

    def geomean_speedup(
        self, platform: str, *, baseline: str = "t4"
    ) -> float:
        """One platform's GEOMEAN speedup bar over ``baseline``."""
        return self.speedup(baseline).geomean(platform)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "GridResult":
        from repro.api.spec import ExperimentSpec

        payload = _require_schema(payload, "GridResult")
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            cells=tuple(
                CellResult.from_dict(c) for c in payload["cells"]
            ),
        )


# ----------------------------------------------------------------------
# Thrashing (Fig. 2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ThrashingReport:
    """Fig. 2 replacement statistics of one (dataset, model) NA run."""

    dataset: str
    model: str
    platform: str
    na_hit_ratio: float
    redundant_accesses: int
    total_na_misses: int
    histogram: dict[int, dict[str, float]]
    restructured: bool = False

    @property
    def redundancy_fraction(self) -> float:
        """Share of NA DRAM fetches that are re-fetches (pure waste)."""
        if self.total_na_misses == 0:
            return 0.0
        return self.redundant_accesses / self.total_na_misses

    def thrashing_vertex_ratio(self) -> float:
        """Percent of fetched vertices replaced at least once."""
        return sum(b["vertex_ratio"] for b in self.histogram.values())

    def thrashing_access_ratio(self) -> float:
        """Percent of DRAM accesses made by replaced vertices."""
        return sum(b["access_ratio"] for b in self.histogram.values())

    @classmethod
    def from_profile(
        cls,
        profile: Any,
        *,
        platform: str = "hihgnn",
        restructured: bool = False,
    ) -> "ThrashingReport":
        """Typed view of an ``analysis.thrashing.ThrashingProfile``."""
        return cls(
            dataset=str(profile.dataset),
            model=str(profile.model),
            platform=platform,
            na_hit_ratio=float(profile.na_hit_ratio),
            redundant_accesses=int(profile.redundant_accesses),
            total_na_misses=int(profile.total_na_misses),
            histogram={
                int(times): {str(k): float(v) for k, v in series.items()}
                for times, series in profile.histogram.items()
            },
            restructured=restructured,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "dataset": self.dataset,
            "model": self.model,
            "platform": self.platform,
            "restructured": self.restructured,
            "na_hit_ratio": self.na_hit_ratio,
            "redundant_accesses": self.redundant_accesses,
            "total_na_misses": self.total_na_misses,
            "histogram": {
                str(times): dict(series)
                for times, series in self.histogram.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ThrashingReport":
        payload = _require_schema(payload, "ThrashingReport")
        return cls(
            dataset=str(payload["dataset"]),
            model=str(payload["model"]),
            platform=str(payload["platform"]),
            restructured=bool(payload.get("restructured", False)),
            na_hit_ratio=float(payload["na_hit_ratio"]),
            redundant_accesses=int(payload["redundant_accesses"]),
            total_na_misses=int(payload["total_na_misses"]),
            histogram={
                int(times): {k: float(v) for k, v in series.items()}
                for times, series in payload["histogram"].items()
            },
        )


# ----------------------------------------------------------------------
# Dataset statistics (Table 2 / ``repro datasets``)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DatasetStatRow:
    """One vertex type of one generated dataset."""

    dataset: str
    vertex_type: str
    vertices: int
    feature_dim: int | None = None
    spec_vertices: int | None = None
    relations: int | None = None

    def __getitem__(self, key: str) -> Any:
        # Dict-style access for pre-API callers of table2() rows.
        return getattr(self, key)

    def to_dict(self) -> dict[str, Any]:
        return {
            "dataset": self.dataset,
            "vertex_type": self.vertex_type,
            "vertices": self.vertices,
            "feature_dim": self.feature_dim,
            "spec_vertices": self.spec_vertices,
            "relations": self.relations,
        }


@dataclass(frozen=True)
class DatasetStatsReport:
    """Table 2-style dataset statistics (rows + per-dataset edge counts)."""

    rows: tuple[DatasetStatRow, ...]
    edges: dict[str, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[DatasetStatRow]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> DatasetStatRow:
        return self.rows[index]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "rows": [row.to_dict() for row in self.rows],
            "edges": dict(self.edges),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DatasetStatsReport":
        payload = _require_schema(payload, "DatasetStatsReport")
        return cls(
            rows=tuple(
                DatasetStatRow(
                    dataset=str(r["dataset"]),
                    vertex_type=str(r["vertex_type"]),
                    vertices=int(r["vertices"]),
                    feature_dim=_opt_int(r.get("feature_dim")),
                    spec_vertices=_opt_int(r.get("spec_vertices")),
                    relations=_opt_int(r.get("relations")),
                )
                for r in payload["rows"]
            ),
            edges={k: int(v) for k, v in payload["edges"].items()},
        )


# ----------------------------------------------------------------------
# Platform configuration (Table 3)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SystemConfigReport:
    """Table 3: the accelerator's and the frontend's key parameters."""

    hihgnn: dict[str, float]
    gdr_hgnn: dict[str, float]

    def __getitem__(self, key: str) -> dict[str, float]:
        # Pre-API callers index with the paper's column names.
        return {"hihgnn": self.hihgnn, "gdr-hgnn": self.gdr_hgnn}[key]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "hihgnn": dict(self.hihgnn),
            "gdr_hgnn": dict(self.gdr_hgnn),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SystemConfigReport":
        payload = _require_schema(payload, "SystemConfigReport")
        return cls(
            hihgnn={k: float(v) for k, v in payload["hihgnn"].items()},
            gdr_hgnn={k: float(v) for k, v in payload["gdr_hgnn"].items()},
        )


# ----------------------------------------------------------------------
# Area / power (Fig. 10)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AreaComponent:
    """One hardware component's area/power entry."""

    block: str
    component: str
    area_mm2: float
    power_mw: float

    def to_dict(self) -> dict[str, Any]:
        return {
            "block": self.block,
            "component": self.component,
            "area_mm2": self.area_mm2,
            "power_mw": self.power_mw,
        }


@dataclass(frozen=True)
class AreaReport:
    """Fig. 10: component breakdown + GDR-HGNN's share of the system."""

    components: tuple[AreaComponent, ...]
    shares: dict[str, float]

    @classmethod
    def from_breakdown(
        cls, accelerator: Any = None, frontend: Any = None
    ) -> "AreaReport":
        """Build from :mod:`repro.energy.breakdown` (default configs)."""
        from repro.energy.breakdown import area_breakdown, figure10_shares

        components = tuple(
            AreaComponent(
                block=str(c.block),
                component=str(c.component),
                area_mm2=float(c.area_mm2),
                power_mw=float(c.power_mw),
            )
            for c in area_breakdown(accelerator, frontend)
        )
        shares = {
            k: float(v)
            for k, v in figure10_shares(accelerator, frontend).items()
        }
        return cls(components=components, shares=shares)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "components": [c.to_dict() for c in self.components],
            "shares": dict(self.shares),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AreaReport":
        payload = _require_schema(payload, "AreaReport")
        return cls(
            components=tuple(
                AreaComponent(
                    block=str(c["block"]),
                    component=str(c["component"]),
                    area_mm2=float(c["area_mm2"]),
                    power_mw=float(c["power_mw"]),
                )
                for c in payload["components"]
            ),
            shares={k: float(v) for k, v in payload["shares"].items()},
        )


# ----------------------------------------------------------------------
# Restructuring (``repro restructure``)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RestructureRelationRow:
    """Decoupling/recoupling statistics of one semantic graph."""

    relation: str
    edges: int
    matching: int
    backbone: int
    subgraph_edges: tuple[int, ...]
    leaves: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "relation": self.relation,
            "edges": self.edges,
            "matching": self.matching,
            "backbone": self.backbone,
            "subgraph_edges": list(self.subgraph_edges),
            "leaves": self.leaves,
        }


@dataclass(frozen=True)
class RestructureReport:
    """Restructuring statistics of one dataset's semantic graphs."""

    dataset: str
    rows: tuple[RestructureRelationRow, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "dataset": self.dataset,
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RestructureReport":
        payload = _require_schema(payload, "RestructureReport")
        return cls(
            dataset=str(payload["dataset"]),
            rows=tuple(
                RestructureRelationRow(
                    relation=str(r["relation"]),
                    edges=int(r["edges"]),
                    matching=int(r["matching"]),
                    backbone=int(r["backbone"]),
                    subgraph_edges=tuple(
                        int(e) for e in r["subgraph_edges"]
                    ),
                    leaves=int(r["leaves"]),
                )
                for r in payload["rows"]
            ),
        )
