"""The execution facade: specs in, typed results out.

A :class:`Session` owns everything that makes repeated experiments
cheap — the parallel :class:`~repro.platforms.runner.GridRunner` with
its per-dataset topology caches, and an optional persistent
:class:`~repro.platforms.store.ArtifactStore` of schema-versioned
:class:`~repro.api.results.CellResult` payloads — and exposes two ways
to execute an :class:`~repro.api.spec.ExperimentSpec`:

- :meth:`Session.run` blocks and returns a complete
  :class:`~repro.api.results.GridResult` in the spec's canonical cell
  order (deterministic regardless of worker count).
- :meth:`Session.run_iter` is a generator yielding each
  :class:`~repro.api.results.CellResult` *as it completes* on the
  worker pool, so dashboards and long sweeps consume results
  incrementally instead of waiting for the slowest cell.

One session serves many specs: per-(seed, scale, configuration)
workspaces keep dataset graphs, semantic-graph artifacts and result
memos isolated, while specs differing only in grid axes share them.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.api.results import RESULT_SCHEMA_VERSION, CellResult, GridResult
from repro.api.spec import ExperimentSpec, GridKey
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.platforms.failures import CellFailure, RetryPolicy
from repro.platforms.runner import GridRunner
from repro.platforms.store import ArtifactStore, config_digest
from repro.scenarios import workload_digest

__all__ = ["Session", "ProgressCallback"]

#: ``progress(done, total, result)`` — invoked after every completed
#: cell (store hits included), with ``done`` counting from 1.
ProgressCallback = Callable[[int, int, CellResult], None]

#: Store schema tag of persisted cell results. The tag participates in
#: both the content address and the store envelope, so bumping
#: RESULT_SCHEMA_VERSION makes every stale entry an automatic miss.
_CELL_SCHEMA = ("cell-result", RESULT_SCHEMA_VERSION)


@dataclass
class _Workspace:
    """Caches of one (seed, scale, platform-configuration) universe."""

    runner: GridRunner
    cells: dict[GridKey, CellResult] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)


class Session:
    """Runs experiment specs and caches their typed results.

    Args:
        spec: default spec for calls that omit one.
        store: optional persistent artifact store; when given, results
            survive the process and later sessions (or concurrent CLI
            invocations) are warm.
        jobs: default worker count for grid fan-out (1 = serial).
        executor: default fan-out backend — ``"thread"`` (shared
            address space), ``"process"`` (true multicore over
            shared-memory artifacts) or ``"auto"`` (process when
            ``jobs > 1`` and the machine has more than one CPU).
            Results are bit-identical across backends.
    """

    def __init__(
        self,
        spec: ExperimentSpec | None = None,
        *,
        store: ArtifactStore | None = None,
        jobs: int = 1,
        executor: str = "thread",
    ) -> None:
        if executor not in ("thread", "process", "auto"):
            raise ValueError(
                "executor must be one of ('thread', 'process', 'auto'), "
                f"got {executor!r}"
            )
        self.spec = spec if spec is not None else ExperimentSpec()
        self.store = store
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self._workspaces: dict[object, _Workspace] = {}
        self._workspaces_lock = threading.Lock()

    def close(self) -> None:
        """Release per-workspace resources (shared-memory segments).

        Safe to skip: every runner also unlinks its segments when
        garbage collected and at interpreter exit.
        """
        with self._workspaces_lock:
            workspaces = list(self._workspaces.values())
        for workspace in workspaces:
            workspace.runner.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Workspaces and shared artifacts
    # ------------------------------------------------------------------

    def _workspace(self, spec: ExperimentSpec) -> _Workspace:
        key = (spec.seed, spec.scale, spec.context())
        with self._workspaces_lock:
            workspace = self._workspaces.get(key)
            if workspace is None:
                workspace = _Workspace(
                    runner=GridRunner(
                        spec.context(),
                        seed=spec.seed,
                        scale=spec.scale,
                        jobs=self.jobs,
                        executor=self.executor,
                    )
                )
                self._workspaces[key] = workspace
        return workspace

    @property
    def runner(self) -> GridRunner:
        """The default spec's grid runner (shared topology caches)."""
        return self._workspace(self.spec).runner

    def graph(self, dataset: str, *, spec: ExperimentSpec | None = None) -> HeteroGraph:
        """The (cached) generated dataset graph."""
        return self._workspace(spec or self.spec).runner.graph(dataset)

    def semantic_graphs(
        self, dataset: str, *, spec: ExperimentSpec | None = None
    ) -> list[SemanticGraph]:
        """The (cached) warmed SGB output of one dataset."""
        workspace = self._workspace(spec or self.spec)
        return workspace.runner.artifacts(dataset).semantic_graphs

    # ------------------------------------------------------------------
    # Store plumbing (typed, schema-versioned payloads)
    # ------------------------------------------------------------------

    def _cell_store_key(
        self, workspace: _Workspace, spec: ExperimentSpec, key: GridKey
    ) -> str:
        platform_name, model, dataset = key
        platform = workspace.runner.platform(platform_name)
        # workload_digest covers the resolved generation recipe, so a
        # changed scenario parameter (or catalog recipe edit) is a
        # store miss even when the dataset name text is unchanged.
        digest = config_digest(
            spec.seed,
            spec.scale,
            workload_digest(dataset, spec.seed, spec.scale),
            *platform.digest_sources(),
            _CELL_SCHEMA,
        )
        return self.store.key_for(platform_name, model, dataset, digest)

    def _peek(
        self, workspace: _Workspace, spec: ExperimentSpec, key: GridKey
    ) -> CellResult | None:
        """Memo or store lookup; never simulates."""
        with workspace.lock:
            cached = workspace.cells.get(key)
        if cached is not None:
            return cached
        if self.store is None:
            return None
        payload = self.store.load(
            self._cell_store_key(workspace, spec, key), schema=_CELL_SCHEMA
        )
        if payload is None:
            return None
        result = CellResult.from_dict(payload)
        with workspace.lock:
            return workspace.cells.setdefault(key, result)

    def _compute(
        self,
        workspace: _Workspace,
        spec: ExperimentSpec,
        key: GridKey,
        *,
        retry: RetryPolicy | None = None,
        on_error: str = "raise",
    ) -> CellResult:
        """Simulate one cell, persist and memoize its typed result.

        With ``on_error="collect"`` a terminally failing cell comes
        back as ``CellResult(status="failed")`` carrying the typed
        :class:`CellFailure`; failures are neither memoized nor
        persisted, so a later run retries the cell fresh.
        """
        outcome = workspace.runner.run_cell(
            *key, probe_store=False, retry=retry, on_error=on_error
        )
        return self._finalize(workspace, spec, key, outcome)

    def _finalize(
        self,
        workspace: _Workspace,
        spec: ExperimentSpec,
        key: GridKey,
        outcome: object,
    ) -> CellResult:
        """Turn a runner outcome into a typed, persisted CellResult.

        Always runs in the parent process — also for cells simulated on
        the process backend — so the store's bytes are identical no
        matter which executor produced the report.
        """
        if isinstance(outcome, CellFailure):
            return CellResult.from_failure(outcome)
        # Re-key on the grid coordinate: reports label themselves with
        # self-describing names (e.g. dataset "acm@0.05", model alias
        # normalization) that must not leak into cell identity.
        result = dataclasses.replace(
            CellResult.from_report(outcome),
            platform=key[0],
            model=key[1],
            dataset=key[2],
        )
        if self.store is not None:
            # Cache writes are best-effort: a transiently failing save
            # (disk full, injected I/O fault) costs the cache entry,
            # never the computed cell.
            try:
                self.store.save(
                    self._cell_store_key(workspace, spec, key),
                    result.to_dict(),
                    schema=_CELL_SCHEMA,
                )
            except Exception as exc:
                if not RetryPolicy.is_transient(exc):
                    raise
        with workspace.lock:
            return workspace.cells.setdefault(key, result)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def cell(
        self,
        platform: str,
        model: str,
        dataset: str,
        *,
        spec: ExperimentSpec | None = None,
    ) -> CellResult:
        """Run (or fetch) one grid cell by coordinate.

        ``platform`` is resolved through the registry, so any
        ``@register_platform`` entry is accepted — the cell does not
        have to appear in the spec's own grid.
        """
        spec = self.spec if spec is None else spec
        workspace = self._workspace(spec)
        key: GridKey = (platform, model, dataset)
        result = self._peek(workspace, spec, key)
        if result is None:
            result = self._compute(workspace, spec, key)
        return result

    # ------------------------------------------------------------------
    # Service hooks (used by repro.service; stable but low-level)
    # ------------------------------------------------------------------

    def cell_content_key(
        self, key: GridKey, *, spec: ExperimentSpec | None = None
    ) -> str:
        """Content key of one grid cell, independent of any store.

        Two submissions map to the same key exactly when they denote
        the same computation: same grid coordinate, same seed/scale,
        same *resolved* workload recipe (scenario refs canonicalize
        before digesting) and same platform configuration. The service
        registry dedupes in-flight work on this key.
        """
        spec = self.spec if spec is None else spec
        workspace = self._workspace(spec)
        platform_name, model, dataset = key
        platform = workspace.runner.platform(platform_name)
        digest = config_digest(
            spec.seed,
            spec.scale,
            workload_digest(dataset, spec.seed, spec.scale),
            *platform.digest_sources(),
            _CELL_SCHEMA,
        )
        return config_digest(platform_name, model, dataset, digest)

    def peek_cell(
        self, key: GridKey, *, spec: ExperimentSpec | None = None
    ) -> CellResult | None:
        """Memo or store lookup of one cell; never simulates.

        This is the warm path of the service layer: store hits are
        served straight from here without touching the job queue.
        """
        spec = self.spec if spec is None else spec
        return self._peek(self._workspace(spec), spec, key)

    def compute_cells(
        self,
        cells: list[GridKey],
        *,
        spec: ExperimentSpec | None = None,
        jobs: int | None = None,
        executor: str | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "collect",
    ) -> Iterator[tuple[GridKey, CellResult]]:
        """Compute the given cells, yielding ``(key, result)`` as each
        completes.

        Unlike :meth:`run_iter` this takes an explicit cell list (the
        service dispatcher batches cells from *many* client specs that
        share a workspace), skips the warm peek (the caller already
        peeked), and yields the grid key next to every result.
        Artifacts are warmed first and finalization (persist + memo)
        happens parent-side, so results are bit-identical to
        :meth:`run` across thread and process backends. Abandoning the
        generator tears the fan-out down synchronously, exactly like
        :meth:`run_iter`.
        """
        spec = self.spec if spec is None else spec
        workspace = self._workspace(spec)
        if not cells:
            return
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        workspace.runner.warm_artifacts(
            [dataset for _, _, dataset in cells],
            jobs=jobs,
            errors=on_error,
        )
        inner = workspace.runner.run_cells(
            cells,
            jobs=jobs,
            executor=self.executor if executor is None else executor,
            retry=retry,
            on_error=on_error,
        )
        try:
            for key, outcome in inner:
                yield key, self._finalize(workspace, spec, key, outcome)
        finally:
            inner.close()

    def run_iter(
        self,
        spec: ExperimentSpec | None = None,
        *,
        jobs: int | None = None,
        executor: str | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
        retry: RetryPolicy | None = None,
    ) -> Iterator[CellResult]:
        """Yield every grid cell exactly once, as each one completes.

        Cached cells (session memo or store hits) are yielded first —
        without generating a single graph — then the remaining cells
        fan out over the thread or process backend
        (:meth:`GridRunner.run_cells`) and stream back in completion
        order. The union of yielded cells always equals
        ``spec.cells()``; only the order varies with ``jobs`` — the
        results themselves are bit-identical across backends and
        worker counts.

        With ``on_error="collect"`` cell failures are isolated: a
        failing cell yields ``CellResult(status="failed")`` (typed
        failure attached) and every other cell still runs — the
        exactly-once guarantee covers failures too. ``retry`` governs
        transient-error retries per cell (see :class:`RetryPolicy`).
        """
        if on_error not in ("raise", "collect"):
            raise ValueError(
                "on_error must be one of ('raise', 'collect'), "
                f"got {on_error!r}"
            )
        spec = self.spec if spec is None else spec
        workspace = self._workspace(spec)
        # Resolve every platform up front so an unknown name fails
        # before any simulation work starts.
        for name in spec.platforms:
            workspace.runner.platform(name)
        cells = list(spec.cells())
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        total = len(cells)
        done = 0

        def emit(result: CellResult) -> CellResult:
            nonlocal done
            done += 1
            if progress is not None:
                progress(done, total, result)
            return result

        pending: list[GridKey] = []
        for key in cells:
            result = self._peek(workspace, spec, key)
            if result is None:
                pending.append(key)
            else:
                yield emit(result)
        if not pending:
            return
        # Topology artifacts are the state shared across workers: warm
        # them before the fan-out so parallel runs stay bit-identical
        # to serial ones (distinct datasets warm concurrently). The
        # process backend publishes exactly these warmed artifacts to
        # shared memory.
        workspace.runner.warm_artifacts(
            [dataset for _, _, dataset in pending],
            jobs=jobs,
            # In collect mode a failed dataset build degrades to typed
            # per-cell failures instead of aborting the stream.
            errors=on_error,
        )
        # run_cells cancels not-yet-started cells when its generator is
        # closed, waiting only for the ones already in flight. A
        # consumer that abandons *this* generator (a disconnecting
        # client dropping its stream) raises GeneratorExit at our yield
        # — the explicit close() in the finally block propagates the
        # abandonment inward *synchronously*, so pool shutdown happens
        # here and now rather than whenever the inner generator is
        # garbage collected (pending futures, executor workers and shm
        # segments would otherwise outlive the consumer).
        inner = workspace.runner.run_cells(
            pending,
            jobs=jobs,
            executor=self.executor if executor is None else executor,
            retry=retry,
            on_error=on_error,
        )
        try:
            for key, outcome in inner:
                yield emit(self._finalize(workspace, spec, key, outcome))
        finally:
            inner.close()

    def run(
        self,
        spec: ExperimentSpec | None = None,
        *,
        jobs: int | None = None,
        executor: str | None = None,
        progress: ProgressCallback | None = None,
        on_error: str = "raise",
        retry: RetryPolicy | None = None,
    ) -> GridResult:
        """Execute the whole grid and return it in canonical order.

        The result is independent of worker count and completion
        order: cells are sorted back into ``spec.cells()`` order, and
        ``GridResult.from_dict(result.to_dict())`` round-trips
        bit-identically.

        With ``on_error="collect"`` the returned grid may contain
        ``status="failed"`` cells; its derived reports then degrade
        gracefully over the surviving cells
        (:meth:`GridResult.failures` lists the casualties).
        """
        spec = self.spec if spec is None else spec
        collected: dict[GridKey, CellResult] = {}
        for result in self.run_iter(
            spec,
            jobs=jobs,
            executor=executor,
            progress=progress,
            on_error=on_error,
            retry=retry,
        ):
            collected[result.key] = result
        return GridResult(
            spec=spec, cells=tuple(collected[key] for key in spec.cells())
        )

    def store_stats(self) -> dict[str, int] | None:
        """Live counters of the session's store (``None`` when storeless).

        Includes the crash-safety counters (``quarantined``,
        ``evicted``, ``read_errors``) next to hits/misses/puts — the
        numbers ``evaluate --store-stats`` and the service layer
        surface.
        """
        if self.store is None:
            return None
        return self.store.stats.as_dict()
