"""Public programmatic API: declarative specs, typed results, sessions.

This package is the stable entry point for driving the reproduction
from other programs. It separates *describing* an experiment from
*executing* it, the way mature simulator frontends do:

- :class:`~repro.api.spec.ExperimentSpec` — a declarative, validated,
  serializable description of the platform x model x dataset grid.
- :class:`~repro.api.session.Session` — executes specs (blocking
  :meth:`~repro.api.session.Session.run` or streaming
  :meth:`~repro.api.session.Session.run_iter`) over the platform
  registry, the parallel grid runner and the on-disk artifact store.
- :mod:`repro.api.results` — typed, schema-versioned result objects
  (:class:`~repro.api.results.CellResult`,
  :class:`~repro.api.results.GridResult`, the Fig. 7/8/9 metric
  reports, …) that round-trip through ``to_dict()`` / ``from_dict()``.

Quick tour::

    from repro.api import ExperimentSpec, Session

    spec = ExperimentSpec(platforms=("t4", "hihgnn+gdr"),
                          models=("rgcn",), datasets=("imdb",),
                          scale=0.3)
    session = Session(spec, jobs=4)
    for cell in session.run_iter():          # streams as-completed
        print(cell.platform, cell.time_ms)
    grid = session.run()                     # complete, ordered
    print(grid.speedup(baseline="t4").geomean("hihgnn+gdr"))
"""

from repro.api.results import (
    RESULT_SCHEMA_VERSION,
    AreaReport,
    BandwidthReport,
    CellResult,
    DatasetStatsReport,
    DramTrafficReport,
    GridResult,
    MetricReport,
    RestructureReport,
    SchemaMismatchError,
    SpeedupReport,
    SystemConfigReport,
    ThrashingReport,
    geomean,
    metric_report_from_dict,
)
from repro.api.session import Session
from repro.api.spec import DEFAULT_PLATFORMS, SPEC_SCHEMA_VERSION, ExperimentSpec

__all__ = [
    "ExperimentSpec",
    "Session",
    "CellResult",
    "GridResult",
    "MetricReport",
    "SpeedupReport",
    "DramTrafficReport",
    "BandwidthReport",
    "ThrashingReport",
    "DatasetStatsReport",
    "SystemConfigReport",
    "AreaReport",
    "RestructureReport",
    "SchemaMismatchError",
    "geomean",
    "metric_report_from_dict",
    "DEFAULT_PLATFORMS",
    "RESULT_SCHEMA_VERSION",
    "SPEC_SCHEMA_VERSION",
]
