"""RGCN (Schlichtkrull et al., ESWC'18) as an HGNN stage pipeline.

Single relational graph-convolution layer:

.. math::

    h_v = \\mathrm{ReLU}\\Big( W_0 x_v + \\sum_{R} \\sum_{u \\in N_R(v)}
          \\tfrac{1}{c_{v,R}} W_R x_u \\Big)

with :math:`c_{v,R}` the in-degree of ``v`` under relation ``R``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.models.base import HGNNModel
from repro.models.layers import linear, relu, segment_sum, xavier_uniform

__all__ = ["RGCN"]


class RGCN(HGNNModel):
    """Relational GCN: mean aggregation per relation, summed fusion."""

    name = "rgcn"

    def init_params(self, graph: HeteroGraph, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        embed = self.config.embed_dim
        hidden = self.config.hidden_dim
        weights = {
            str(relation): xavier_uniform(rng, embed, hidden)
            for relation in graph.relations
        }
        self_weights = {
            vtype: xavier_uniform(rng, embed, hidden)
            for vtype in graph.vertex_types
        }
        biases = {
            vtype: np.zeros(hidden, dtype=np.float64)
            for vtype in graph.vertex_types
        }
        return {
            "w_in": self.init_input_projection(graph, rng),
            "w_rel": weights,
            "w_self": self_weights,
            "bias": biases,
        }

    def feature_projection(
        self,
        semantic_graphs: list[SemanticGraph],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, dict[str, np.ndarray | None]]:
        projected: dict[str, dict[str, np.ndarray | None]] = {}
        for sg in semantic_graphs:
            key = str(sg.relation)
            if key in projected:
                continue  # subgraphs of one relation share the projection
            x_src = features[sg.relation.src_type]
            projected[key] = {
                "src": linear(x_src, params["w_rel"][key]),
                "dst": None,
            }
        return projected

    def neighbor_aggregation(
        self,
        graph: SemanticGraph,
        projected: dict[str, np.ndarray | None],
        params: dict,
    ) -> tuple[np.ndarray, np.ndarray]:
        h_src = projected["src"]
        hidden = h_src.shape[1]
        if graph.num_edges == 0:
            return (
                np.zeros((graph.num_dst, hidden), dtype=h_src.dtype),
                np.zeros(graph.num_dst, dtype=h_src.dtype),
            )
        messages = h_src[graph.src]
        numerator = segment_sum(messages, graph.dst, graph.num_dst)
        denominator = np.bincount(
            graph.dst, minlength=graph.num_dst
        ).astype(h_src.dtype)
        return numerator, denominator

    def semantic_fusion(
        self,
        graph: HeteroGraph,
        na_results: dict[str, np.ndarray],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, np.ndarray]:
        fused = {
            vtype: linear(features[vtype], params["w_self"][vtype])
            + params["bias"][vtype]
            for vtype in graph.vertex_types
        }
        for relation in graph.relations:
            key = str(relation)
            if key in na_results:
                fused[relation.dst_type] = fused[relation.dst_type] + na_results[key]
        return {vtype: relu(h) for vtype, h in fused.items()}

    def na_flops_per_edge(self) -> int:
        # One MAC per hidden element for the running sum, plus the
        # degree increment.
        return 2 * self.config.hidden_dim + 2

    def sf_flops_per_vertex(self, num_relations: int) -> int:
        # Relation-result adds + ReLU (self projection is FP work).
        return (num_relations + 1) * self.config.hidden_dim
