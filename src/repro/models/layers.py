"""Shared neural layers and segment operations (numpy)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "linear",
    "relu",
    "leaky_relu",
    "elu",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "row_normalize_adjacency",
]


def xavier_uniform(
    rng: np.random.Generator, fan_in: int, fan_out: int
) -> np.ndarray:
    """Glorot/Xavier uniform weight initialization."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = float(np.sqrt(6.0 / (fan_in + fan_out)))
    return rng.uniform(-bound, bound, size=(fan_in, fan_out)).astype(np.float64)


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """Affine projection ``x @ weight (+ bias)``."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.01) -> np.ndarray:
    return np.where(x >= 0.0, x, negative_slope * x)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    return np.where(x >= 0.0, x, alpha * np.expm1(x))


def segment_sum(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Sum ``values`` rows into ``num_segments`` buckets.

    Args:
        values: ``(n, d)`` or ``(n,)`` array.
        segment_ids: ``(n,)`` bucket index per row.
        num_segments: number of output rows.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    if values.shape[0] != segment_ids.shape[0]:
        raise ValueError("values and segment_ids must agree on length")
    out_shape = (num_segments,) + values.shape[1:]
    out = np.zeros(out_shape, dtype=values.dtype)
    np.add.at(out, segment_ids, values)
    return out


def segment_mean(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-bucket mean; empty buckets yield zero rows."""
    totals = segment_sum(values, segment_ids, num_segments)
    counts = np.bincount(segment_ids, minlength=num_segments).astype(values.dtype)
    counts = np.maximum(counts, 1)
    return totals / counts.reshape((num_segments,) + (1,) * (values.ndim - 1))


def segment_max(
    values: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Per-bucket max; empty buckets yield ``-inf`` rows."""
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    out_shape = (num_segments,) + values.shape[1:]
    out = np.full(out_shape, -np.inf, dtype=values.dtype)
    np.maximum.at(out, segment_ids, values)
    return out


def segment_softmax(
    scores: np.ndarray, segment_ids: np.ndarray, num_segments: int
) -> np.ndarray:
    """Numerically stable softmax within each segment.

    The attention normalization of the NA stage: ``scores`` are per-edge
    logits, segments are destination vertices.
    """
    segment_ids = np.asarray(segment_ids, dtype=np.int64)
    maxes = segment_max(scores, segment_ids, num_segments)
    shifted = scores - maxes[segment_ids]
    exp = np.exp(shifted)
    sums = segment_sum(exp, segment_ids, num_segments)
    sums = np.where(sums == 0.0, 1.0, sums)
    return exp / sums[segment_ids]


def row_normalize_adjacency(
    dst_ids: np.ndarray, num_dst: int
) -> np.ndarray:
    """Per-edge ``1 / in_degree(dst)`` coefficients (RGCN's ``1/c_{i,r}``)."""
    degrees = np.bincount(dst_ids, minlength=num_dst).astype(np.float64)
    degrees = np.maximum(degrees, 1.0)
    return 1.0 / degrees[dst_ids]
