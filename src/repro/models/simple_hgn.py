"""Simple-HGN (Lv et al., KDD'21): GAT with edge-type attention terms.

Extends multi-head graph attention with a learned edge-type embedding
inside the score and a residual connection on the output:

.. math::

    e_{uv} = \\mathrm{LeakyReLU}(a_l \\cdot h_u + a_r \\cdot h_v
             + a_e \\cdot W_e \\, r_{uv})

where :math:`r_{uv}` is the one-hot relation of the edge. Within one
semantic graph the relation is constant, so the edge term is a single
per-relation, per-head scalar -- which is how HiHGNN executes it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.models.base import HGNNModel
from repro.models.layers import elu, leaky_relu, linear, segment_sum, xavier_uniform

__all__ = ["SimpleHGN"]


class SimpleHGN(HGNNModel):
    """Simple heterogeneous GNN with edge-type-aware attention."""

    name = "simple_hgn"

    @property
    def projects_destinations(self) -> bool:
        return True

    def init_params(self, graph: HeteroGraph, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        cfg = self.config
        params: dict = {
            "w_in": self.init_input_projection(graph, rng),
            "w_src": {},
            "w_dst": {},
            "attn_l": {},
            "attn_r": {},
            "edge_term": {},
            "w_res": {},
        }
        for relation in graph.relations:
            key = str(relation)
            params["w_src"][key] = xavier_uniform(rng, cfg.embed_dim, cfg.hidden_dim)
            params["w_dst"][key] = xavier_uniform(rng, cfg.embed_dim, cfg.hidden_dim)
            params["attn_l"][key] = (
                rng.standard_normal((cfg.num_heads, cfg.head_dim)) * 0.1
            )
            params["attn_r"][key] = (
                rng.standard_normal((cfg.num_heads, cfg.head_dim)) * 0.1
            )
            # a_e . (W_e r) collapses to one learned scalar per head
            # within a semantic graph (constant relation).
            params["edge_term"][key] = rng.standard_normal(cfg.num_heads) * 0.1
        for vtype in graph.vertex_types:
            params["w_res"][vtype] = xavier_uniform(rng, cfg.embed_dim, cfg.hidden_dim)
        return params

    def feature_projection(
        self,
        semantic_graphs: list[SemanticGraph],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, dict[str, np.ndarray | None]]:
        projected: dict[str, dict[str, np.ndarray | None]] = {}
        for sg in semantic_graphs:
            key = str(sg.relation)
            if key in projected:
                continue
            projected[key] = {
                "src": linear(features[sg.relation.src_type], params["w_src"][key]),
                "dst": linear(features[sg.relation.dst_type], params["w_dst"][key]),
            }
        return projected

    def neighbor_aggregation(
        self,
        graph: SemanticGraph,
        projected: dict[str, np.ndarray | None],
        params: dict,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        h_src, h_dst = projected["src"], projected["dst"]
        heads, head_dim = cfg.num_heads, cfg.head_dim
        if graph.num_edges == 0:
            return (
                np.zeros((graph.num_dst, cfg.hidden_dim), dtype=h_src.dtype),
                np.zeros((graph.num_dst, heads), dtype=h_src.dtype),
            )
        key = str(graph.relation)
        src_heads = h_src.reshape(-1, heads, head_dim)
        dst_heads = h_dst.reshape(-1, heads, head_dim)
        alpha_src = (src_heads * params["attn_l"][key][None]).sum(axis=2)
        alpha_dst = (dst_heads * params["attn_r"][key][None]).sum(axis=2)
        logits = (
            alpha_src[graph.src]
            + alpha_dst[graph.dst]
            + params["edge_term"][key][None, :]
        )
        scores = leaky_relu(logits, cfg.negative_slope)
        weights = np.exp(scores)  # unshifted, split-safe
        messages = h_src[graph.src].reshape(-1, heads, head_dim)
        weighted = (messages * weights[:, :, None]).reshape(-1, cfg.hidden_dim)
        numerator = segment_sum(weighted, graph.dst, graph.num_dst)
        denominator = segment_sum(weights, graph.dst, graph.num_dst)
        return numerator, denominator

    def semantic_fusion(
        self,
        graph: HeteroGraph,
        na_results: dict[str, np.ndarray],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, np.ndarray]:
        fused = {
            vtype: linear(features[vtype], params["w_res"][vtype])
            for vtype in graph.vertex_types
        }
        for relation in graph.relations:
            key = str(relation)
            if key in na_results:
                fused[relation.dst_type] = fused[relation.dst_type] + na_results[key]
        return {vtype: elu(h) for vtype, h in fused.items()}

    def na_flops_per_edge(self) -> int:
        cfg = self.config
        # RGAT's cost plus the per-head edge-term add.
        return 4 * cfg.hidden_dim + 5 * cfg.num_heads + 2 * cfg.hidden_dim

    def sf_flops_per_vertex(self, num_relations: int) -> int:
        # Residual add + relation adds + ELU.
        return (num_relations + 2) * self.config.hidden_dim
