"""RGAT (Wang et al., ACL'20): relational multi-head graph attention.

Per relation ``R`` and head ``k``:

.. math::

    e_{uv} = \\mathrm{LeakyReLU}(a_l^k \\cdot h_u^k + a_r^k \\cdot h_v^k),
    \\qquad
    \\alpha_{uv} = \\mathrm{softmax}_{u \\in N(v)}(e_{uv}),
    \\qquad
    h'_v = \\Vert_k \\sum_u \\alpha_{uv} h_u^k

followed by a mean fusion over relations per destination type.

The NA accumulator carries unshifted ``exp`` sums so edge-disjoint
subgraphs compose exactly (see :class:`repro.models.base.HGNNModel`).
"""

from __future__ import annotations

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.models.base import HGNNModel
from repro.models.layers import leaky_relu, linear, segment_sum, xavier_uniform

__all__ = ["RGAT"]


class RGAT(HGNNModel):
    """Relational graph attention with per-relation projections."""

    name = "rgat"

    @property
    def projects_destinations(self) -> bool:
        return True

    def init_params(self, graph: HeteroGraph, seed: int = 0) -> dict:
        rng = np.random.default_rng(seed)
        cfg = self.config
        params: dict = {
            "w_in": self.init_input_projection(graph, rng),
            "w_src": {},
            "w_dst": {},
            "attn_l": {},
            "attn_r": {},
        }
        for relation in graph.relations:
            key = str(relation)
            params["w_src"][key] = xavier_uniform(rng, cfg.embed_dim, cfg.hidden_dim)
            params["w_dst"][key] = xavier_uniform(rng, cfg.embed_dim, cfg.hidden_dim)
            params["attn_l"][key] = (
                rng.standard_normal((cfg.num_heads, cfg.head_dim)) * 0.1
            )
            params["attn_r"][key] = (
                rng.standard_normal((cfg.num_heads, cfg.head_dim)) * 0.1
            )
        return params

    def feature_projection(
        self,
        semantic_graphs: list[SemanticGraph],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, dict[str, np.ndarray | None]]:
        projected: dict[str, dict[str, np.ndarray | None]] = {}
        for sg in semantic_graphs:
            key = str(sg.relation)
            if key in projected:
                continue
            projected[key] = {
                "src": linear(features[sg.relation.src_type], params["w_src"][key]),
                "dst": linear(features[sg.relation.dst_type], params["w_dst"][key]),
            }
        return projected

    def _edge_scores(
        self,
        graph: SemanticGraph,
        h_src: np.ndarray,
        h_dst: np.ndarray,
        attn_l: np.ndarray,
        attn_r: np.ndarray,
        extra: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Per-edge per-head attention logits, ``(num_edges, heads)``."""
        cfg = self.config
        heads, head_dim = cfg.num_heads, cfg.head_dim
        src_heads = h_src.reshape(-1, heads, head_dim)
        dst_heads = h_dst.reshape(-1, heads, head_dim)
        alpha_src = (src_heads * attn_l[None]).sum(axis=2)  # (num_src, heads)
        alpha_dst = (dst_heads * attn_r[None]).sum(axis=2)  # (num_dst, heads)
        logits = alpha_src[graph.src] + alpha_dst[graph.dst] + extra
        return leaky_relu(logits, cfg.negative_slope)

    def neighbor_aggregation(
        self,
        graph: SemanticGraph,
        projected: dict[str, np.ndarray | None],
        params: dict,
    ) -> tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        h_src, h_dst = projected["src"], projected["dst"]
        heads, head_dim = cfg.num_heads, cfg.head_dim
        if graph.num_edges == 0:
            return (
                np.zeros((graph.num_dst, cfg.hidden_dim), dtype=h_src.dtype),
                np.zeros((graph.num_dst, heads), dtype=h_src.dtype),
            )
        key = str(graph.relation)
        scores = self._edge_scores(
            graph, h_src, h_dst, params["attn_l"][key], params["attn_r"][key]
        )
        weights = np.exp(scores)  # (num_edges, heads); unshifted, split-safe
        messages = h_src[graph.src].reshape(-1, heads, head_dim)
        weighted = (messages * weights[:, :, None]).reshape(-1, cfg.hidden_dim)
        numerator = segment_sum(weighted, graph.dst, graph.num_dst)
        denominator = segment_sum(weights, graph.dst, graph.num_dst)
        return numerator, denominator

    def semantic_fusion(
        self,
        graph: HeteroGraph,
        na_results: dict[str, np.ndarray],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, np.ndarray]:
        cfg = self.config
        fused: dict[str, np.ndarray] = {}
        counts: dict[str, int] = {}
        for relation in graph.relations:
            key = str(relation)
            if key not in na_results:
                continue
            dst_type = relation.dst_type
            if dst_type in fused:
                fused[dst_type] = fused[dst_type] + na_results[key]
                counts[dst_type] += 1
            else:
                fused[dst_type] = na_results[key].copy()
                counts[dst_type] = 1
        out: dict[str, np.ndarray] = {}
        for vtype in graph.vertex_types:
            if vtype in fused:
                out[vtype] = fused[vtype] / counts[vtype]
            else:
                out[vtype] = np.zeros(
                    (graph.num_vertices(vtype), cfg.hidden_dim), dtype=np.float64
                )
        return out

    def na_flops_per_edge(self) -> int:
        cfg = self.config
        # Two attention dots, LeakyReLU + exp per head, the weighted
        # accumulate, and the per-head denominator update.
        return 4 * cfg.hidden_dim + 4 * cfg.num_heads + 2 * cfg.hidden_dim

    def sf_flops_per_vertex(self, num_relations: int) -> int:
        return (num_relations + 1) * self.config.hidden_dim
