"""Functional HGNN models (RGCN, RGAT, Simple-HGN).

Each model executes the paper's four-stage workflow in numpy:

1. **SGB** -- semantic graph build (delegated to
   :func:`repro.graph.build_semantic_graphs`),
2. **FP** -- per-type feature projection through an MLP,
3. **NA** -- neighbor aggregation inside each semantic graph,
4. **SF** -- semantic fusion of per-relation results per vertex.

The functional layer serves two purposes: it is the reference
implementation the restructured execution is checked against (processing
the three recoupled subgraphs must reproduce the original NA output
bit-for-bit up to float associativity), and it supplies the per-stage
FLOP/byte workload numbers the performance models consume.
"""

from repro.models.base import HGNNModel, ModelConfig, make_features
from repro.models.rgcn import RGCN
from repro.models.rgat import RGAT
from repro.models.simple_hgn import SimpleHGN
from repro.models.workload import (
    StageWork,
    SemanticGraphWork,
    WorkloadModel,
    MODEL_REGISTRY,
    get_model,
)

__all__ = [
    "HGNNModel",
    "ModelConfig",
    "make_features",
    "RGCN",
    "RGAT",
    "SimpleHGN",
    "StageWork",
    "SemanticGraphWork",
    "WorkloadModel",
    "MODEL_REGISTRY",
    "get_model",
]
