"""Model base class, configuration, and feature synthesis."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs

__all__ = ["ModelConfig", "make_features", "HGNNModel"]


@dataclass(frozen=True)
class ModelConfig:
    """Hyper-parameters shared by all three models.

    The HiHGNN evaluation (which this paper inherits, §5.1) uses
    single-layer inference with a common hidden size; heads only affect
    attention models.

    Attributes:
        hidden_dim: projected feature dimension after FP. The default
            512 follows the HGB convention HiHGNN inherits (8 heads x
            64 per head, concatenated); it also sets the on-chip
            feature-vector footprint (2 KB at fp32) that determines
            buffer pressure.
        num_heads: attention heads (RGAT / Simple-HGN).
        embed_dim: per-type input-projection dimension. Following the
            HGB pipeline, every vertex type's raw features are first
            projected once (type-wise) to ``embed_dim``; the
            per-relation FP projections then map ``embed_dim`` to
            ``hidden_dim``. Featureless types get ``embed_dim``
            synthetic embeddings directly.
        feature_bytes: bytes per scalar feature in hardware (fp32 = 4).
        negative_slope: LeakyReLU slope in attention scoring.
        edge_embed_dim: edge-type embedding size (Simple-HGN).
    """

    hidden_dim: int = 512
    num_heads: int = 8
    embed_dim: int = 64
    feature_bytes: int = 4
    negative_slope: float = 0.05
    edge_embed_dim: int = 64

    def __post_init__(self) -> None:
        if self.hidden_dim <= 0 or self.num_heads <= 0 or self.embed_dim <= 0:
            raise ValueError("dimensions must be positive")
        if self.hidden_dim % self.num_heads:
            raise ValueError("hidden_dim must divide evenly into heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    @property
    def feature_vector_bytes(self) -> int:
        """On-chip bytes of one projected feature vector."""
        return self.hidden_dim * self.feature_bytes


def make_features(
    graph: HeteroGraph,
    config: ModelConfig | None = None,
    seed: int = 0,
) -> dict[str, np.ndarray]:
    """Synthesize per-type input features.

    Types with a raw feature dimension get that dimension; featureless
    types (e.g. IMDB keywords) get ``config.embed_dim`` synthetic
    embeddings, mirroring DGL's learnable-embedding fallback.
    """
    config = config or ModelConfig()
    rng = np.random.default_rng(seed)
    features = {}
    for vtype in graph.vertex_types:
        dim = graph.feature_dim(vtype) or config.embed_dim
        n = graph.num_vertices(vtype)
        features[vtype] = rng.standard_normal((n, dim)) * 0.1
    return features


class HGNNModel(ABC):
    """Base class: a single-layer HGNN as an SGB/FP/NA/SF pipeline.

    Subclasses implement the three compute stages; SGB is shared.

    The NA stage returns an *unnormalized accumulator* -- a
    ``(numerator, denominator)`` pair -- rather than a finished result.
    Accumulators from edge-disjoint subgraphs of the same relation add
    element-wise, so executing the three recoupled subgraphs of a
    relation reproduces the original semantic graph's NA output
    exactly. (For softmax attention the accumulator is
    ``sum(exp(score) * message) / sum(exp(score))``; scores here are
    bounded, so the unshifted form is numerically safe.)
    """

    name: str = "hgnn"

    def __init__(self, config: ModelConfig | None = None) -> None:
        self.config = config or ModelConfig()

    # ------------------------------------------------------------------
    # Stage interfaces
    # ------------------------------------------------------------------

    def init_input_projection(
        self, graph: HeteroGraph, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Per-type input projection weights (raw dim -> embed_dim)."""
        from repro.models.layers import xavier_uniform

        return {
            vtype: xavier_uniform(
                rng,
                graph.feature_dim(vtype) or self.config.embed_dim,
                self.config.embed_dim,
            )
            for vtype in graph.vertex_types
        }

    def input_projection(
        self, features: dict[str, np.ndarray], params: dict
    ) -> dict[str, np.ndarray]:
        """Project every type's raw features to ``embed_dim`` (once)."""
        return {
            vtype: feats @ params["w_in"][vtype]
            for vtype, feats in features.items()
        }

    @abstractmethod
    def init_params(self, graph: HeteroGraph, seed: int = 0) -> dict:
        """Create all learnable parameters for ``graph``'s schema.

        Every subclass must include the shared ``"w_in"`` entry from
        :meth:`init_input_projection`.
        """

    @abstractmethod
    def feature_projection(
        self,
        semantic_graphs: list[SemanticGraph],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, dict[str, np.ndarray | None]]:
        """FP stage: per-relation projection into the hidden space.

        Args:
            features: *embedded* per-type features (``embed_dim`` wide,
                the output of :meth:`input_projection`).

        Returns:
            ``{str(relation): {"src": (num_src, hidden),
            "dst": (num_dst, hidden) or None}}``; ``dst`` is only
            materialized by models whose attention scores need it.
        """

    @abstractmethod
    def neighbor_aggregation(
        self,
        graph: SemanticGraph,
        projected: dict[str, np.ndarray | None],
        params: dict,
    ) -> tuple[np.ndarray, np.ndarray]:
        """NA stage over one semantic graph (or restructured subgraph).

        Args:
            graph: semantic graph; restructured subgraphs keep the
                original id spaces so indexing is unchanged.
            projected: the relation's FP output (``src``/``dst``).
            params: model parameters.

        Returns:
            ``(numerator, denominator)`` with shapes
            ``(num_dst, hidden)`` and ``(num_dst,)``. The final
            aggregation is ``numerator / max(denominator, eps)``;
            accumulators of edge-disjoint subgraphs sum.
        """

    @abstractmethod
    def semantic_fusion(
        self,
        graph: HeteroGraph,
        na_results: dict[str, np.ndarray],
        features: dict[str, np.ndarray],
        params: dict,
    ) -> dict[str, np.ndarray]:
        """SF stage: fuse per-relation NA outputs per destination type.

        Args:
            na_results: ``{str(relation): (num_dst, hidden)}`` finished
                (normalized) NA outputs.
        """

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    @staticmethod
    def finalize_na(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
        """Normalize an NA accumulator into the finished aggregation.

        ``denominator`` is ``(num_dst,)`` for single normalizers or
        ``(num_dst, heads)`` for per-head attention normalizers (each
        head's denominator is repeated across its head_dim columns).
        """
        safe = np.where(denominator == 0.0, 1.0, denominator)
        if denominator.ndim == 1:
            return numerator / safe[:, None]
        heads = denominator.shape[1]
        head_dim = numerator.shape[1] // heads
        return numerator / np.repeat(safe, head_dim, axis=1)

    def forward(
        self,
        graph: HeteroGraph,
        features: dict[str, np.ndarray],
        params: dict,
        semantic_graphs: list[SemanticGraph] | None = None,
    ) -> dict[str, np.ndarray]:
        """Full SGB -> FP -> NA -> SF inference pass.

        Args:
            graph: the heterogeneous graph.
            features: per-type raw features (see :func:`make_features`).
            params: parameters from :meth:`init_params`.
            semantic_graphs: override the SGB output, e.g. with the
                restructured subgraph sequence. Multiple graphs of the
                same relation have their NA accumulators summed, so the
                three recoupled subgraphs of a relation reproduce the
                unrestructured result.

        Returns:
            ``{vtype: (n, hidden) array}`` final embeddings.
        """
        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)
        embedded = self.input_projection(features, params)
        projected = self.feature_projection(semantic_graphs, embedded, params)

        accumulators: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for sg in semantic_graphs:
            key = str(sg.relation)
            numerator, denominator = self.neighbor_aggregation(
                sg, projected[key], params
            )
            if key in accumulators:
                prev_num, prev_den = accumulators[key]
                accumulators[key] = (prev_num + numerator, prev_den + denominator)
            else:
                accumulators[key] = (numerator, denominator)

        na_results = {
            key: self.finalize_na(num, den)
            for key, (num, den) in accumulators.items()
        }
        return self.semantic_fusion(graph, na_results, embedded, params)

    # ------------------------------------------------------------------
    # Workload coefficients (consumed by repro.models.workload)
    # ------------------------------------------------------------------

    def input_proj_flops_per_vertex(self, raw_dim: int) -> int:
        """FLOPs of the once-per-type raw -> embed projection."""
        return 2 * raw_dim * self.config.embed_dim

    def fp_flops_per_vertex(self, in_dim: int | None = None) -> int:
        """FLOPs of the per-relation embed -> hidden projection."""
        if in_dim is None:
            in_dim = self.config.embed_dim
        return 2 * in_dim * self.config.hidden_dim

    @property
    def projects_destinations(self) -> bool:
        """Whether FP also projects destination vertices (attention)."""
        return False

    @abstractmethod
    def na_flops_per_edge(self) -> int:
        """FLOPs charged per edge during neighbor aggregation."""

    @abstractmethod
    def sf_flops_per_vertex(self, num_relations: int) -> int:
        """FLOPs to fuse ``num_relations`` semantic results for one vertex."""
