"""Workload accounting: FLOPs and bytes per stage, per semantic graph.

Performance models (GPU and accelerator) consume these numbers instead
of re-deriving them: the *compute* side of a stage is fully determined
by the model and graph, while the *memory* side additionally depends on
the platform's buffering, which each platform simulates itself.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs
from repro.models.base import HGNNModel, ModelConfig
from repro.models.rgcn import RGCN
from repro.models.rgat import RGAT
from repro.models.simple_hgn import SimpleHGN

__all__ = [
    "StageWork",
    "SemanticGraphWork",
    "WorkloadModel",
    "MODEL_REGISTRY",
    "get_model",
]

MODEL_REGISTRY: dict[str, type[HGNNModel]] = {
    "rgcn": RGCN,
    "rgat": RGAT,
    "simple_hgn": SimpleHGN,
}


def get_model(name: str, config: ModelConfig | None = None) -> HGNNModel:
    """Instantiate a registered model by name (case-insensitive)."""
    key = name.lower().replace("-", "_")
    try:
        cls = MODEL_REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(MODEL_REGISTRY))
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
    return cls(config)


@dataclass(frozen=True)
class StageWork:
    """Work of one stage on one semantic graph.

    Attributes:
        flops: arithmetic operations.
        input_bytes: compulsory input traffic (each distinct operand
            once; platforms add thrashing re-fetches on top).
        weight_bytes: parameter traffic.
        output_bytes: result bytes produced.
    """

    flops: int
    input_bytes: int
    weight_bytes: int
    output_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.weight_bytes + self.output_bytes


@dataclass(frozen=True)
class SemanticGraphWork:
    """Per-stage work of one semantic graph plus its NA access profile."""

    relation: str
    num_active_src: int
    num_active_dst: int
    num_edges: int
    fp: StageWork
    na: StageWork
    sf: StageWork
    feature_vector_bytes: int

    @property
    def total_flops(self) -> int:
        return self.fp.flops + self.na.flops + self.sf.flops

    @property
    def total_bytes(self) -> int:
        return self.fp.total_bytes + self.na.total_bytes + self.sf.total_bytes


class WorkloadModel:
    """Derives :class:`SemanticGraphWork` for a model on a graph."""

    def __init__(self, model: HGNNModel) -> None:
        self.model = model

    @property
    def config(self) -> ModelConfig:
        return self.model.config

    def semantic_graph_work(
        self, graph: SemanticGraph, num_relations_at_dst: int = 1
    ) -> SemanticGraphWork:
        """Work of the FP/NA/SF stages on one semantic graph.

        Args:
            graph: the semantic graph.
            num_relations_at_dst: how many relations target this
                graph's destination type (scales per-vertex SF cost
                attribution; the hetero-level driver passes the real
                count, standalone callers can leave 1).
        """
        cfg = self.config
        fb = cfg.feature_bytes
        fvb = cfg.feature_vector_bytes
        active_src = len(graph.active_src())
        active_dst = len(graph.active_dst())
        embed = cfg.embed_dim

        # Per-relation FP operates on embedded (embed_dim) features;
        # the raw -> embed projection is accounted once per type by
        # :meth:`input_projection_work`.
        fp_flops = active_src * self.model.fp_flops_per_vertex(embed)
        fp_input = active_src * embed * fb
        fp_weights = embed * cfg.hidden_dim * fb
        fp_output = active_src * fvb
        if self.model.projects_destinations:
            fp_flops += active_dst * self.model.fp_flops_per_vertex(embed)
            fp_input += active_dst * embed * fb
            fp_weights += embed * cfg.hidden_dim * fb
            fp_output += active_dst * fvb
        fp = StageWork(fp_flops, fp_input, fp_weights, fp_output)

        na = StageWork(
            flops=graph.num_edges * self.model.na_flops_per_edge(),
            # Compulsory: each active source feature once; platforms add
            # re-fetches (thrashing) on top of this floor.
            input_bytes=active_src * fvb,
            weight_bytes=0,
            output_bytes=active_dst * fvb,
        )

        sf = StageWork(
            flops=active_dst
            * self.model.sf_flops_per_vertex(num_relations_at_dst)
            // max(num_relations_at_dst, 1),
            input_bytes=active_dst * fvb,
            weight_bytes=0,
            output_bytes=active_dst * fvb,
        )

        return SemanticGraphWork(
            relation=str(graph.relation),
            num_active_src=active_src,
            num_active_dst=active_dst,
            num_edges=graph.num_edges,
            fp=fp,
            na=na,
            sf=sf,
            feature_vector_bytes=fvb,
        )

    def input_projection_work(self, graph: HeteroGraph) -> dict[str, StageWork]:
        """Once-per-type raw -> embed projection work.

        Featureless types synthesise ``embed_dim`` embeddings directly,
        so their projection is an identity-cost table read.
        """
        cfg = self.config
        fb = cfg.feature_bytes
        work: dict[str, StageWork] = {}
        for vtype in graph.vertex_types:
            n = graph.num_vertices(vtype)
            raw = graph.feature_dim(vtype) or cfg.embed_dim
            work[vtype] = StageWork(
                flops=n * self.model.input_proj_flops_per_vertex(raw),
                input_bytes=n * raw * fb,
                weight_bytes=raw * cfg.embed_dim * fb,
                output_bytes=n * cfg.embed_dim * fb,
            )
        return work

    def hetero_work(
        self, graph: HeteroGraph, semantic_graphs: list[SemanticGraph] | None = None
    ) -> list[SemanticGraphWork]:
        """Work items for every semantic graph of ``graph``."""
        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)
        relations_at_dst: dict[str, int] = {}
        for sg in semantic_graphs:
            dst_type = sg.relation.dst_type
            relations_at_dst[dst_type] = relations_at_dst.get(dst_type, 0) + 1
        return [
            self.semantic_graph_work(
                sg, num_relations_at_dst=relations_at_dst[sg.relation.dst_type]
            )
            for sg in semantic_graphs
        ]
