"""Buffer-thrashing analysis (§3 and Fig. 2).

Runs the accelerator's NA stage per dataset and reports how many times
each vertex's feature was replaced from the buffer, the ratio of
vertices at each replacement count, and the ratio of DRAM accesses they
caused -- the two series of Fig. 2.

The run is routed through the platform registry, so the CLI's
``thrash`` command, :meth:`EvaluationSuite.figure2` and ad-hoc analyses
all profile exactly the same platform construction (and registered
accelerator variants can be profiled by name).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import HiHGNNConfig
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.models.base import ModelConfig
from repro.platforms.base import PlatformContext
from repro.platforms.registry import create_platform
from repro.restructure.restructure import GraphRestructurer

__all__ = ["ThrashingProfile", "thrashing_analysis"]


@dataclass
class ThrashingProfile:
    """Replacement statistics of one (dataset, model) NA run."""

    dataset: str
    model: str
    histogram: dict[int, dict[str, float]]
    redundant_accesses: int
    total_na_misses: int
    na_hit_ratio: float

    @property
    def redundancy_fraction(self) -> float:
        """Share of NA DRAM fetches that are re-fetches (pure waste)."""
        if self.total_na_misses == 0:
            return 0.0
        return self.redundant_accesses / self.total_na_misses

    def thrashing_vertex_ratio(self) -> float:
        """Percent of fetched vertices replaced at least once."""
        return sum(b["vertex_ratio"] for b in self.histogram.values())

    def thrashing_access_ratio(self) -> float:
        """Percent of DRAM accesses made by replaced vertices."""
        return sum(b["access_ratio"] for b in self.histogram.values())

    def as_report(
        self, *, platform: str = "hihgnn", restructured: bool = False
    ):
        """The typed, serializable :class:`repro.api.results.ThrashingReport`."""
        from repro.api.results import ThrashingReport

        return ThrashingReport.from_profile(
            self, platform=platform, restructured=restructured
        )


def thrashing_analysis(
    graph: HeteroGraph,
    model_name: str = "rgcn",
    *,
    platform: str = "hihgnn",
    config: HiHGNNConfig | None = None,
    model_config: ModelConfig | None = None,
    restructurer: GraphRestructurer | None = None,
    semantic_graphs: list[SemanticGraph] | None = None,
) -> ThrashingProfile:
    """Measure Fig. 2's replacement statistics on one dataset.

    Args:
        graph: the dataset.
        model_name: HGNN model (the paper uses RGCN for Fig. 2).
        platform: registry name of the accelerator platform to profile
            (must produce a :class:`SimulationReport`-shaped result
            with NA stage totals).
        config: accelerator configuration (Table 3 defaults).
        model_config: model hyper-parameters.
        restructurer: when given, profiles the restructured execution
            instead (used to show the histogram collapsing). Forwarded
            through the platform's ``simulate``.
        semantic_graphs: pre-built SGB output to reuse across runs.
    """
    context = PlatformContext(
        accelerator=config or HiHGNNConfig(),
        model_config=model_config or ModelConfig(),
    )
    target = create_platform(platform, context)
    artifacts = target.prepare(graph, semantic_graphs)
    extra = {"restructurer": restructurer} if restructurer is not None else {}
    report = target.simulate(model_name, artifacts, **extra)
    na = report.stage_totals["na"]
    return ThrashingProfile(
        dataset=graph.name,
        model=model_name,
        histogram=report.na_replacement_histogram,
        redundant_accesses=report.na_redundant_accesses,
        total_na_misses=na.buffer_misses,
        na_hit_ratio=report.na_hit_ratio,
    )
