"""Experiment harness regenerating every table and figure of the paper."""

from repro.analysis.report import ascii_table, format_ratio, render_histogram
from repro.analysis.thrashing import ThrashingProfile, thrashing_analysis
from repro.analysis.experiments import (
    EvaluationConfig,
    EvaluationSuite,
    geomean,
)
from repro.analysis.sweeps import BufferSweepPoint, buffer_sensitivity

__all__ = [
    "ascii_table",
    "format_ratio",
    "render_histogram",
    "ThrashingProfile",
    "thrashing_analysis",
    "EvaluationConfig",
    "EvaluationSuite",
    "geomean",
    "BufferSweepPoint",
    "buffer_sensitivity",
]
