"""Design-space sweeps: sensitivity of the results to key parameters.

These utilities answer the designer questions behind Table 3's choices:
how large must the NA buffer be before restructuring stops mattering,
and how does the frontend's community budget interact with it.

Sweep points run through the platform registry, and the dataset's
topology artifacts (SGB output, traces, replay precomputation) are
built once and shared across every capacity point and both platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.accelerator.config import HiHGNNConfig
from repro.graph.hetero import HeteroGraph
from repro.models.base import ModelConfig
from repro.platforms.base import DatasetArtifacts, PlatformContext
from repro.platforms.registry import create_platform

__all__ = ["BufferSweepPoint", "buffer_sensitivity"]

MB = 1 << 20


@dataclass(frozen=True)
class BufferSweepPoint:
    """One point of a buffer-capacity sweep."""

    na_buffer_mb: float
    base_time_ms: float
    gdr_time_ms: float
    base_na_hit: float
    gdr_na_hit: float
    base_dram_accesses: int
    gdr_dram_accesses: int

    @property
    def speedup(self) -> float:
        """GDR system speedup over bare HiHGNN at this capacity."""
        if self.gdr_time_ms <= 0:
            return float("inf")
        return self.base_time_ms / self.gdr_time_ms

    @property
    def access_ratio(self) -> float:
        """GDR / HiHGNN DRAM-access ratio at this capacity."""
        return self.gdr_dram_accesses / max(self.base_dram_accesses, 1)

    def to_dict(self) -> dict:
        """JSON-serializable form (derived ratios included)."""
        return {
            "na_buffer_mb": self.na_buffer_mb,
            "base_time_ms": self.base_time_ms,
            "gdr_time_ms": self.gdr_time_ms,
            "base_na_hit": self.base_na_hit,
            "gdr_na_hit": self.gdr_na_hit,
            "base_dram_accesses": self.base_dram_accesses,
            "gdr_dram_accesses": self.gdr_dram_accesses,
            "speedup": self.speedup,
            "access_ratio": self.access_ratio,
        }


def buffer_sensitivity(
    graph: HeteroGraph,
    model_name: str = "rgcn",
    *,
    buffer_mbs: tuple[float, ...] = (2.0, 4.0, 8.0, 14.52, 24.0),
    base_config: HiHGNNConfig | None = None,
    model_config: ModelConfig | None = None,
    artifacts: DatasetArtifacts | None = None,
) -> list[BufferSweepPoint]:
    """Sweep the NA buffer size; compare HiHGNN with and without GDR.

    Expected shape: GDR's advantage grows as the buffer shrinks (the
    paper's motivation) and vanishes once the working set fits.

    Args:
        graph: the dataset.
        model_name: HGNN model to run.
        buffer_mbs: NA buffer capacities to test (Table 3's 14.52 MB
            among them by default).
        base_config: template accelerator config (buffer size is
            overridden per point).
        model_config: model hyper-parameters.
        artifacts: pre-warmed topology artifacts (e.g. a session's
            ``runner.artifacts(dataset)``) to share with other
            experiments; built once here when omitted.

    Returns:
        One :class:`BufferSweepPoint` per capacity, in input order.
    """
    template = base_config or HiHGNNConfig()
    if artifacts is None:
        artifacts = DatasetArtifacts.build(graph)
    points = []
    for capacity_mb in buffer_mbs:
        context = PlatformContext(
            accelerator=replace(
                template, na_buffer_bytes=int(capacity_mb * MB)
            ),
            model_config=model_config or ModelConfig(),
        )
        base = create_platform("hihgnn", context).simulate(
            model_name, artifacts
        )
        gdr = create_platform("hihgnn+gdr", context).simulate(
            model_name, artifacts
        )
        points.append(
            BufferSweepPoint(
                na_buffer_mb=capacity_mb,
                base_time_ms=base.time_ms,
                gdr_time_ms=gdr.time_ms,
                base_na_hit=base.na_hit_ratio,
                gdr_na_hit=gdr.na_hit_ratio,
                base_dram_accesses=base.dram_accesses,
                gdr_dram_accesses=gdr.dram_accesses,
            )
        )
    return points
