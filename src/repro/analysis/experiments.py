"""The evaluation suite: every figure and table of §5 (plus §3).

Since the :mod:`repro.api` redesign this module is a *compatibility
adapter*: :class:`EvaluationConfig` converts to an
:class:`~repro.api.spec.ExperimentSpec` and :class:`EvaluationSuite`
delegates every run to a :class:`~repro.api.session.Session`, exposing
one method per paper artifact. All figure/table methods now return the
typed result objects of :mod:`repro.api.results` (which keep the old
nested-dict indexing working); new code should drive the spec/session
API directly.

All numbers are normalized exactly as the paper normalizes them
(speedup and DRAM access relative to the T4 baseline; GEOMEAN across
the model/dataset grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator.config import HiHGNNConfig
from repro.analysis.thrashing import ThrashingProfile, thrashing_analysis
from repro.api.results import (
    BandwidthReport,
    CellResult,
    DatasetStatRow,
    DatasetStatsReport,
    DramTrafficReport,
    GridResult,
    MetricReport,
    SpeedupReport,
    SystemConfigReport,
    geomean,
)
from repro.api.session import Session
from repro.api.spec import DEFAULT_PLATFORMS, ExperimentSpec
from repro.energy.breakdown import figure10_shares
from repro.frontend.config import GDRConfig
from repro.graph.datasets import DATASET_SPECS
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.graph.stats import graph_stats
from repro.models.base import ModelConfig
from repro.models.workload import MODEL_REGISTRY
from repro.platforms import ArtifactStore

__all__ = ["EvaluationConfig", "EvaluationSuite", "geomean", "PLATFORMS"]

#: The four platforms of the paper's §5 comparison, in report-column
#: order. The full registry (including experiment-registered variants)
#: is :func:`repro.platforms.platform_names`.
PLATFORMS = DEFAULT_PLATFORMS


@dataclass
class EvaluationConfig:
    """What to run and at what fidelity.

    ``scale < 1`` shrinks the datasets for quick runs (tests / smoke);
    the published comparison uses ``scale=1.0``. Dataset and model
    names are validated eagerly, so a typo fails at construction with
    the offending entry named instead of surfacing as a ``KeyError``
    deep inside a simulation.

    This predates :class:`~repro.api.spec.ExperimentSpec` (which also
    carries the platform axis); :meth:`to_spec` converts.
    """

    datasets: tuple[str, ...] = ("acm", "imdb", "dblp")
    models: tuple[str, ...] = ("rgcn", "rgat", "simple_hgn")
    seed: int = 1
    scale: float = 1.0
    accelerator: HiHGNNConfig = field(default_factory=HiHGNNConfig)
    frontend: GDRConfig = field(default_factory=GDRConfig)
    model_config: ModelConfig = field(default_factory=ModelConfig)

    def __post_init__(self) -> None:
        # Same namespace as ExperimentSpec: catalog datasets plus
        # scenario references, canonicalized eagerly.
        from repro.scenarios import canonical_workload

        self.datasets = tuple(
            canonical_workload(dataset) for dataset in self.datasets
        )
        for model in self.models:
            if model.lower().replace("-", "_") not in MODEL_REGISTRY:
                known = ", ".join(sorted(MODEL_REGISTRY))
                raise ValueError(
                    f"unknown model {model!r}; known models: {known}"
                )

    def to_spec(
        self, platforms: tuple[str, ...] = PLATFORMS
    ) -> ExperimentSpec:
        """The equivalent declarative spec (adds the platform axis)."""
        return ExperimentSpec(
            platforms=tuple(platforms),
            models=tuple(self.models),
            datasets=tuple(self.datasets),
            seed=self.seed,
            scale=self.scale,
            accelerator=self.accelerator,
            frontend=self.frontend,
            model_config=self.model_config,
        )

    def platform_context(self):
        """The configuration bundle handed to platform adapters."""
        return self.to_spec().context()


class EvaluationSuite:
    """Compatibility facade over :class:`repro.api.session.Session`.

    Args:
        config: grid contents and fidelity.
        store: optional persistent :class:`ArtifactStore`; when given,
            repeated suite constructions (e.g. separate CLI
            invocations) reuse each other's typed cell results.
        jobs: default worker count for :meth:`run_grid`.
    """

    def __init__(
        self,
        config: EvaluationConfig | None = None,
        *,
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        self.config = config or EvaluationConfig()
        self.session = Session(self.config.to_spec(), store=store, jobs=jobs)

    @property
    def runner(self):
        return self.session.runner

    @property
    def store(self) -> ArtifactStore | None:
        return self.session.store

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def graph(self, dataset: str) -> HeteroGraph:
        """The (cached) synthetic dataset."""
        return self.session.graph(dataset)

    def semantic_graphs(self, dataset: str) -> list[SemanticGraph]:
        """The (cached) SGB output of one dataset.

        Built once per dataset and handed to every platform run. The
        semantic graphs memoize their CSR/CSC views, active-vertex
        sets, NA access traces and replay artifacts, so the expensive
        trace work is paid once and shared across the whole
        platform x model grid (traces are pure topology).
        """
        return self.session.semantic_graphs(dataset)

    def run(self, platform: str, model: str, dataset: str) -> CellResult:
        """Run (or fetch from cache) one cell of the grid.

        ``platform`` is resolved through the registry, so any
        ``@register_platform`` entry — the four paper platforms or an
        experiment-defined variant — is accepted.
        """
        return self.session.cell(platform, model, dataset)

    def _spec_for(self, platforms: tuple[str, ...]) -> ExperimentSpec:
        platforms = tuple(platforms)
        if platforms == self.session.spec.platforms:
            return self.session.spec
        return self.session.spec.replace(platforms=platforms)

    def run_grid(
        self,
        platforms: tuple[str, ...] = PLATFORMS,
        *,
        jobs: int | None = None,
    ) -> GridResult:
        """Populate the cache for all requested platforms.

        ``jobs > 1`` fans the grid out over a worker pool; results are
        bit-identical to a serial run (simulations are deterministic
        and the shared topology artifacts are built before the fan-out).
        """
        return self.session.run(self._spec_for(platforms), jobs=jobs)

    # ------------------------------------------------------------------
    # Figures and tables
    # ------------------------------------------------------------------

    def table2(self) -> DatasetStatsReport:
        """Table 2: dataset statistics (generated vs specified)."""
        rows = []
        for dataset in self.config.datasets:
            # Scenario workloads have no Table 2 row to compare with;
            # their generated counts stand in as their own spec.
            spec = DATASET_SPECS.get(dataset)
            graph = self.graph(dataset)
            for vtype in graph.vertex_types:
                rows.append(
                    DatasetStatRow(
                        dataset=dataset,
                        vertex_type=vtype,
                        spec_vertices=(
                            spec.num_vertices[vtype]
                            if spec is not None
                            else graph.num_vertices(vtype)
                        ),
                        vertices=graph.num_vertices(vtype),
                        feature_dim=graph.feature_dim(vtype),
                        relations=sum(
                            1
                            for r in graph.relations
                            if r.src_type == vtype or r.dst_type == vtype
                        ),
                    )
                )
        return DatasetStatsReport(
            rows=tuple(rows),
            edges={
                dataset: self.graph(dataset).num_edges()
                for dataset in self.config.datasets
            },
        )

    def table3(self) -> SystemConfigReport:
        """Table 3: platform configuration dump."""
        accel = self.config.accelerator
        front = self.config.frontend
        return SystemConfigReport(
            hihgnn={
                "peak_tflops": accel.peak_tflops,
                "clock_ghz": accel.clock_ghz,
                "num_lanes": accel.num_lanes,
                "fp_buffer_mb": accel.fp_buffer_bytes / (1 << 20),
                "na_buffer_mb": accel.na_buffer_bytes / (1 << 20),
                "sf_buffer_mb": accel.sf_buffer_bytes / (1 << 20),
                "att_buffer_mb": accel.att_buffer_bytes / (1 << 20),
                "hbm_gbs": accel.hbm.peak_bytes_per_cycle * accel.clock_ghz,
            },
            gdr_hgnn={
                "fifo_kb": front.fifo_bytes / 1024,
                "matching_buffer_kb": front.matching_buffer_bytes / 1024,
                "candidate_buffer_kb": front.candidate_buffer_bytes / 1024,
                "adj_buffer_kb": front.adj_buffer_bytes / 1024,
            },
        )

    def figure2(self, model: str = "rgcn") -> dict[str, ThrashingProfile]:
        """Fig. 2: replacement-times histograms per dataset (HiHGNN)."""
        return {
            dataset: thrashing_analysis(
                self.graph(dataset),
                model,
                config=self.config.accelerator,
                model_config=self.config.model_config,
                semantic_graphs=self.semantic_graphs(dataset),
            )
            for dataset in self.config.datasets
        }

    def section3_l2(self, model: str = "rgcn") -> dict[str, float]:
        """§3's T4 measurement: L2 hit ratio of the NA stage per dataset."""
        return {
            dataset: self.run("t4", model, dataset).na_l2_hit_ratio
            for dataset in self.config.datasets
        }

    def _metric_report(
        self,
        cls: type[MetricReport],
        platforms: tuple[str, ...],
        baseline: str | None,
    ) -> MetricReport:
        """Run whatever is missing, then build one Fig. 7/8/9 table.

        The baseline platform is always executed (the paper normalizes
        to T4 even when plotting a platform subset) but only the
        requested ``platforms`` become columns.
        """
        platforms = tuple(platforms)
        names = platforms
        if baseline is not None and baseline not in names:
            names = tuple(dict.fromkeys(names + (baseline,)))
        grid = self.session.run(self._spec_for(names))
        cells = {cell.key: cell for cell in grid.cells}
        return cls.from_cells(
            cells,
            models=tuple(self.config.models),
            datasets=tuple(self.config.datasets),
            platforms=platforms,
            baseline=baseline,
        )

    def figure7(
        self, platforms: tuple[str, ...] = PLATFORMS
    ) -> SpeedupReport:
        """Fig. 7: speedup over T4 per platform/model/dataset + GEOMEAN."""
        return self._metric_report(SpeedupReport, platforms, "t4")

    def figure8(
        self, platforms: tuple[str, ...] = PLATFORMS
    ) -> DramTrafficReport:
        """Fig. 8: DRAM accesses normalized to T4 (fractions <= ~1)."""
        return self._metric_report(DramTrafficReport, platforms, "t4")

    def figure9(
        self, platforms: tuple[str, ...] = PLATFORMS
    ) -> BandwidthReport:
        """Fig. 9: DRAM bandwidth utilization per platform (fractions)."""
        return self._metric_report(BandwidthReport, platforms, None)

    def figure10(self) -> dict[str, float]:
        """Fig. 10: area/power shares of GDR-HGNN in the combined system."""
        return figure10_shares(self.config.accelerator, self.config.frontend)

    # ------------------------------------------------------------------
    # Dataset sanity
    # ------------------------------------------------------------------

    def dataset_profile(self, dataset: str) -> dict[str, dict]:
        """Per-relation graph statistics of one generated dataset."""
        return {
            str(sg.relation): graph_stats(sg).as_dict()
            for sg in self.semantic_graphs(dataset)
        }
