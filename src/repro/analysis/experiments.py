"""The evaluation suite: every figure and table of §5 (plus §3).

:class:`EvaluationSuite` is a thin façade over the platform registry,
the parallel :class:`~repro.platforms.runner.GridRunner` and the
optional on-disk :class:`~repro.platforms.store.ArtifactStore`: it
resolves platforms by name (no hard-coded platform branches), runs the
platform x model x dataset grid — serially or on a worker pool — and
exposes one method per paper artifact. All numbers are normalized
exactly as the paper normalizes them (speedup and DRAM access relative
to the T4 baseline; GEOMEAN across the model/dataset grid).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.accelerator.config import HiHGNNConfig
from repro.analysis.thrashing import ThrashingProfile, thrashing_analysis
from repro.energy.breakdown import figure10_shares
from repro.frontend.config import GDRConfig
from repro.graph.datasets import DATASET_SPECS
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph
from repro.graph.stats import graph_stats
from repro.models.base import ModelConfig
from repro.models.workload import MODEL_REGISTRY
from repro.platforms import ArtifactStore, GridRunner, PlatformContext

__all__ = ["EvaluationConfig", "EvaluationSuite", "geomean", "PLATFORMS"]

#: The four platforms of the paper's §5 comparison, in report-column
#: order. The full registry (including experiment-registered variants)
#: is :func:`repro.platforms.platform_names`.
PLATFORMS = ("t4", "a100", "hihgnn", "hihgnn+gdr")


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's GEOMEAN bars)."""
    if not values:
        raise ValueError("geomean of an empty list")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass
class EvaluationConfig:
    """What to run and at what fidelity.

    ``scale < 1`` shrinks the datasets for quick runs (tests / smoke);
    the published comparison uses ``scale=1.0``. Dataset and model
    names are validated eagerly, so a typo fails at construction with
    the offending entry named instead of surfacing as a ``KeyError``
    deep inside a simulation.
    """

    datasets: tuple[str, ...] = ("acm", "imdb", "dblp")
    models: tuple[str, ...] = ("rgcn", "rgat", "simple_hgn")
    seed: int = 1
    scale: float = 1.0
    accelerator: HiHGNNConfig = field(default_factory=HiHGNNConfig)
    frontend: GDRConfig = field(default_factory=GDRConfig)
    model_config: ModelConfig = field(default_factory=ModelConfig)

    def __post_init__(self) -> None:
        for dataset in self.datasets:
            if dataset not in DATASET_SPECS:
                known = ", ".join(sorted(DATASET_SPECS))
                raise ValueError(
                    f"unknown dataset {dataset!r}; known datasets: {known}"
                )
        for model in self.models:
            if model.lower().replace("-", "_") not in MODEL_REGISTRY:
                known = ", ".join(sorted(MODEL_REGISTRY))
                raise ValueError(
                    f"unknown model {model!r}; known models: {known}"
                )

    def platform_context(self) -> PlatformContext:
        """The configuration bundle handed to platform adapters."""
        return PlatformContext(
            accelerator=self.accelerator,
            frontend=self.frontend,
            model_config=self.model_config,
        )


class EvaluationSuite:
    """Runs and caches the full platform x model x dataset grid.

    Args:
        config: grid contents and fidelity.
        store: optional persistent :class:`ArtifactStore`; when given,
            repeated suite constructions (e.g. separate CLI
            invocations) reuse each other's simulation reports.
        jobs: default worker count for :meth:`run_grid`.
    """

    def __init__(
        self,
        config: EvaluationConfig | None = None,
        *,
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        self.config = config or EvaluationConfig()
        self.runner = GridRunner(
            self.config.platform_context(),
            seed=self.config.seed,
            scale=self.config.scale,
            store=store,
            jobs=jobs,
        )
        # Backward-compatible view of the in-memory result memo.
        self._results = self.runner.results

    @property
    def store(self) -> ArtifactStore | None:
        return self.runner.store

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def graph(self, dataset: str) -> HeteroGraph:
        """The (cached) synthetic dataset."""
        return self.runner.graph(dataset)

    def semantic_graphs(self, dataset: str) -> list[SemanticGraph]:
        """The (cached) SGB output of one dataset.

        Built once per dataset and handed to every platform run. The
        semantic graphs memoize their CSR/CSC views, active-vertex
        sets, NA access traces and replay artifacts, so the expensive
        trace work is paid once and shared across the whole
        platform x model grid (traces are pure topology).
        """
        return self.runner.artifacts(dataset).semantic_graphs

    def run(self, platform: str, model: str, dataset: str):
        """Run (or fetch from cache) one cell of the grid.

        ``platform`` is resolved through the registry, so any
        ``@register_platform`` entry — the four paper platforms or an
        experiment-defined variant — is accepted.
        """
        return self.runner.run_cell(platform, model, dataset)

    def run_grid(
        self,
        platforms: tuple[str, ...] = PLATFORMS,
        *,
        jobs: int | None = None,
    ) -> None:
        """Populate the cache for all requested platforms.

        ``jobs > 1`` fans the grid out over a worker pool; results are
        bit-identical to a serial run (simulations are deterministic
        and the shared topology artifacts are built before the fan-out).
        """
        self.runner.run_grid(
            platforms, self.config.models, self.config.datasets, jobs=jobs
        )

    # ------------------------------------------------------------------
    # Figures and tables
    # ------------------------------------------------------------------

    def table2(self) -> list[dict]:
        """Table 2: dataset statistics (generated vs specified)."""
        rows = []
        for dataset in self.config.datasets:
            spec = DATASET_SPECS[dataset]
            graph = self.graph(dataset)
            for vtype in graph.vertex_types:
                rows.append(
                    {
                        "dataset": dataset,
                        "vertex_type": vtype,
                        "spec_vertices": spec.num_vertices[vtype],
                        "vertices": graph.num_vertices(vtype),
                        "feature_dim": graph.feature_dim(vtype),
                        "relations": sum(
                            1
                            for r in graph.relations
                            if r.src_type == vtype or r.dst_type == vtype
                        ),
                    }
                )
        return rows

    def table3(self) -> dict[str, dict]:
        """Table 3: platform configuration dump."""
        accel = self.config.accelerator
        front = self.config.frontend
        return {
            "hihgnn": {
                "peak_tflops": accel.peak_tflops,
                "clock_ghz": accel.clock_ghz,
                "num_lanes": accel.num_lanes,
                "fp_buffer_mb": accel.fp_buffer_bytes / (1 << 20),
                "na_buffer_mb": accel.na_buffer_bytes / (1 << 20),
                "sf_buffer_mb": accel.sf_buffer_bytes / (1 << 20),
                "att_buffer_mb": accel.att_buffer_bytes / (1 << 20),
                "hbm_gbs": accel.hbm.peak_bytes_per_cycle * accel.clock_ghz,
            },
            "gdr-hgnn": {
                "fifo_kb": front.fifo_bytes / 1024,
                "matching_buffer_kb": front.matching_buffer_bytes / 1024,
                "candidate_buffer_kb": front.candidate_buffer_bytes / 1024,
                "adj_buffer_kb": front.adj_buffer_bytes / 1024,
            },
        }

    def figure2(self, model: str = "rgcn") -> dict[str, ThrashingProfile]:
        """Fig. 2: replacement-times histograms per dataset (HiHGNN)."""
        return {
            dataset: thrashing_analysis(
                self.graph(dataset),
                model,
                config=self.config.accelerator,
                model_config=self.config.model_config,
                semantic_graphs=self.semantic_graphs(dataset),
            )
            for dataset in self.config.datasets
        }

    def section3_l2(self, model: str = "rgcn") -> dict[str, float]:
        """§3's T4 measurement: L2 hit ratio of the NA stage per dataset."""
        return {
            dataset: self.run("t4", model, dataset).na_l2_hit_ratio
            for dataset in self.config.datasets
        }

    def _grid_ratio(
        self,
        metric,
        baseline_platform: str = "t4",
        platforms: tuple[str, ...] = PLATFORMS,
    ) -> dict:
        """Generic Fig. 7/8 style table: metric ratio vs a baseline."""
        table: dict[str, dict[str, dict[str, float]]] = {}
        for model in self.config.models:
            table[model] = {}
            for dataset in self.config.datasets:
                baseline = self.run(baseline_platform, model, dataset)
                row = {}
                for platform in platforms:
                    result = self.run(platform, model, dataset)
                    row[platform] = metric(result, baseline)
                table[model][dataset] = row
        # GEOMEAN across the whole grid, per platform.
        table["GEOMEAN"] = {
            "all": {
                platform: geomean(
                    [
                        table[m][d][platform]
                        for m in self.config.models
                        for d in self.config.datasets
                    ]
                )
                for platform in platforms
            }
        }
        return table

    def figure7(self, platforms: tuple[str, ...] = PLATFORMS) -> dict:
        """Fig. 7: speedup over T4 per platform/model/dataset + GEOMEAN."""
        return self._grid_ratio(
            lambda result, baseline: baseline.time_ms / result.time_ms,
            platforms=platforms,
        )

    def figure8(self, platforms: tuple[str, ...] = PLATFORMS) -> dict:
        """Fig. 8: DRAM accesses normalized to T4 (fractions <= ~1)."""
        return self._grid_ratio(
            lambda result, baseline: result.dram_accesses
            / max(baseline.dram_accesses, 1),
            platforms=platforms,
        )

    def figure9(self, platforms: tuple[str, ...] = PLATFORMS) -> dict:
        """Fig. 9: DRAM bandwidth utilization per platform (fractions)."""
        return self._grid_ratio(
            lambda result, baseline: result.bandwidth_utilization,
            platforms=platforms,
        )

    def figure10(self) -> dict[str, float]:
        """Fig. 10: area/power shares of GDR-HGNN in the combined system."""
        return figure10_shares(self.config.accelerator, self.config.frontend)

    # ------------------------------------------------------------------
    # Dataset sanity
    # ------------------------------------------------------------------

    def dataset_profile(self, dataset: str) -> dict[str, dict]:
        """Per-relation graph statistics of one generated dataset."""
        return {
            str(sg.relation): graph_stats(sg).as_dict()
            for sg in self.semantic_graphs(dataset)
        }
