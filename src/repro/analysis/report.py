"""Plain-text rendering of tables and figure series."""

from __future__ import annotations

__all__ = ["ascii_table", "format_ratio", "render_histogram"]


def ascii_table(
    headers: list[str],
    rows: list[list[object]],
    title: str | None = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render rows as a fixed-width ASCII table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``. Columns are sized to their widest cell.
    """

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append(
        "|" + "|".join(f" {headers[i]:<{widths[i]}} " for i in range(len(headers))) + "|"
    )
    out.append(sep)
    for row in text_rows:
        out.append(
            "|" + "|".join(f" {row[i]:<{widths[i]}} " for i in range(len(row))) + "|"
        )
    out.append(sep)
    return "\n".join(out)


def format_ratio(value: float, *, percent: bool = False) -> str:
    """Human-friendly ratio: ``12.3x`` or ``45.6%``."""
    if percent:
        return f"{value * 100:.1f}%"
    return f"{value:.2f}x"


def render_histogram(
    histogram: dict[int, dict[str, float]],
    *,
    width: int = 40,
    series: str = "vertex_ratio",
) -> str:
    """ASCII bar chart of a Fig. 2-style replacement histogram."""
    if not histogram:
        return "(empty histogram)"
    peak = max(b[series] for b in histogram.values()) or 1.0
    lines = []
    for times in sorted(histogram):
        value = histogram[times][series]
        bar = "#" * int(round(width * value / peak))
        lines.append(f"{times:>3} | {bar:<{width}} {value:5.1f}%")
    return "\n".join(lines)
