"""Scenario catalog: parameterized workload families beyond Table 2.

The paper's phenomenon is evaluated on three fixed datasets; this
package turns that into an open-ended workload grid. A *scenario* is a
registered, parameterized graph recipe referenced as
``family:key=value,...`` anywhere a dataset name is accepted::

    from repro.api import ExperimentSpec, Session

    spec = ExperimentSpec(
        platforms=("t4", "hihgnn+gdr"),
        models=("rgcn",),
        datasets=("acm", "skew:exponent=1.5", "thrash:working_set=4096"),
        scale=0.3,
    )
    Session(spec).run()

- :mod:`repro.scenarios.registry` — ``@register_scenario`` plus
  reference parsing, canonicalization and lookup.
- :mod:`repro.scenarios.families` — the built-in sweep families
  (``scale``, ``skew``, ``relations``, ``community``) and adversarial
  stress cases (``thrash``, ``uniform``, ``star``).
- :mod:`repro.scenarios.workloads` — the single namespace over catalog
  datasets and scenarios used by spec validation, the grid runner and
  artifact-store addressing.
"""

from repro.scenarios.registry import (
    ScenarioFamily,
    ScenarioParam,
    build_scenario,
    canonical_scenario,
    describe_scenario,
    get_scenario,
    is_scenario_ref,
    parse_scenario,
    register_scenario,
    resolve_scenario,
    scenario_names,
    unregister_scenario,
)
from repro.scenarios.workloads import (
    canonical_workload,
    is_catalog_dataset,
    load_workload,
    workload_digest,
)

__all__ = [
    "ScenarioFamily",
    "ScenarioParam",
    "register_scenario",
    "unregister_scenario",
    "scenario_names",
    "get_scenario",
    "parse_scenario",
    "is_scenario_ref",
    "resolve_scenario",
    "canonical_scenario",
    "build_scenario",
    "describe_scenario",
    "canonical_workload",
    "is_catalog_dataset",
    "load_workload",
    "workload_digest",
]
