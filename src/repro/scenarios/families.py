"""Built-in scenario families.

The paper evaluates buffer thrashing on three fixed datasets; these
families open that up into sweeps along the axes that actually drive
the phenomenon — working-set size vs. buffer capacity (``scale``,
``thrash``), degree skew driving feature reuse distance (``skew``,
``star``), relation-set width (``relations``) and latent community
structure (``community``) — plus a no-reuse baseline (``uniform``)
where any thrashing at all is a simulator bug.

Every family is deterministic in ``(params, seed, scale)``: graphs are
generated through :mod:`repro.graph.generators` with a single
``numpy.random.Generator``, and the adversarial families are built
from closed-form edge patterns with no randomness beyond an id
permutation. ``scale`` multiplies every vertex/edge count, so one
sweep definition serves quick CI smoke runs and full-size experiments.

Like the Table 2 catalog, every family emits both edge directions per
base relation.
"""

from __future__ import annotations

import numpy as np

from repro.graph.datasets import DATASET_SPECS
from repro.graph.generators import (
    chung_lu_bipartite,
    community_bipartite,
    configuration_bipartite,
    power_law_weights,
)
from repro.graph.hetero import HeteroGraph, Relation
from repro.scenarios.registry import ScenarioParam, register_scenario

__all__: list[str] = []


def _sized(count: int | float, scale: float, minimum: int = 2) -> int:
    """Apply the global scale factor to one count (floor ``minimum``)."""
    return max(minimum, int(round(count * scale)))


def _degree_sequence(
    n: int, exponent: float, total: int, rng: np.random.Generator
) -> np.ndarray:
    """Integer power-law degree sequence summing exactly to ``total``.

    Largest-remainder rounding of shuffled power-law weights: exact
    total, deterministic in ``rng`` state, and vertex id decorrelated
    from degree.
    """
    weights = power_law_weights(n, exponent, rng)
    ideal = weights * total
    degrees = np.floor(ideal).astype(np.int64)
    remainder = int(total - degrees.sum())
    order = np.argsort(-(ideal - degrees), kind="stable")
    degrees[order[:remainder]] += 1
    return degrees


def _with_reverse(
    edges: dict[Relation, tuple[np.ndarray, np.ndarray]],
) -> dict[Relation, tuple[np.ndarray, np.ndarray]]:
    """Add the reverse direction of every relation (Table 2 style)."""
    full = dict(edges)
    for rel, (src, dst) in edges.items():
        full[rel.reversed()] = (dst.copy(), src.copy())
    return full


def _bipartite_graph(
    num_src: int,
    num_dst: int,
    src: np.ndarray,
    dst: np.ndarray,
    feature_dim: int,
    relation_name: str = "touches",
) -> HeteroGraph:
    """Two-type graph around one generated relation (plus reverse)."""
    relation = Relation("src", relation_name, "dst")
    return HeteroGraph(
        num_vertices={"src": num_src, "dst": num_dst},
        feature_dims={"src": feature_dim, "dst": feature_dim},
        edges=_with_reverse({relation: (src, dst)}),
    )


# ----------------------------------------------------------------------
# Sweep families
# ----------------------------------------------------------------------


@register_scenario(
    "scale",
    params=(
        ScenarioParam("base", "acm", "catalog dataset the sweep scales"),
        ScenarioParam(
            "factor", 1.0, "vertex/edge multiplier (sweep 0.25x-8x)"
        ),
    ),
    doc="A Table 2 dataset with every vertex and edge count multiplied "
    "by `factor` — unlike catalog `scale`, factors above 1 grow the "
    "working set past the paper sizes.",
)
def _build_scale(*, seed, scale, base, factor):
    key = str(base).lower()
    if key not in DATASET_SPECS:
        known = ", ".join(sorted(DATASET_SPECS))
        raise ValueError(
            f"scale scenario base {base!r} is not a catalog dataset; "
            f"known datasets: {known}"
        )
    if factor <= 0:
        raise ValueError(f"factor must be positive, got {factor}")
    spec = DATASET_SPECS[key]
    effective = factor * scale
    rng = np.random.default_rng(seed)

    num_vertices = {
        vtype: _sized(count * effective, 1.0)
        for vtype, count in spec.num_vertices.items()
    }
    edges: dict[Relation, tuple[np.ndarray, np.ndarray]] = {}
    for rel_spec in spec.relations:
        n_src = num_vertices[rel_spec.src_type]
        n_dst = num_vertices[rel_spec.dst_type]
        n_edges = min(
            max(1, int(round(rel_spec.num_edges * effective))), n_src * n_dst
        )
        src, dst = community_bipartite(
            n_src,
            n_dst,
            n_edges,
            num_blocks=max(2, int(round(rel_spec.num_blocks * effective**0.5))),
            mixing=rel_spec.mixing,
            src_exponent=rel_spec.src_exponent,
            dst_exponent=rel_spec.dst_exponent,
            seed=rng,
        )
        relation = Relation(rel_spec.src_type, rel_spec.name, rel_spec.dst_type)
        edges[relation] = (src, dst)
        edges[relation.reversed(rel_spec.reverse_name)] = (dst.copy(), src.copy())
    return HeteroGraph(
        num_vertices=num_vertices,
        feature_dims=dict(spec.feature_dims),
        edges=edges,
    )


@register_scenario(
    "skew",
    params=(
        ScenarioParam("num_src", 2048, "source-side vertex count"),
        ScenarioParam("num_dst", 1024, "destination-side vertex count"),
        ScenarioParam("num_edges", 16384, "distinct edge count"),
        ScenarioParam(
            "exponent", 0.8, "degree-skew exponent, both sides (sweep 0.0-2.0)"
        ),
        ScenarioParam("feature_dim", 64, "raw feature dimension, both types"),
    ),
    doc="One bipartite configuration-model relation whose degree-skew "
    "exponent is the sweep axis: 0.0 is uniform, 2.0 concentrates "
    "reuse on a few hot vertices. Exact degree control means the whole "
    "0.0-2.0 range stays feasible; duplicate stubs are dropped, so "
    "realized edges can fall slightly below `num_edges` at high skew.",
)
def _build_skew(*, seed, scale, num_src, num_dst, num_edges, exponent, feature_dim):
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    n_src = _sized(num_src, scale)
    n_dst = _sized(num_dst, scale)
    n_edges = min(_sized(num_edges, scale, minimum=1), n_src * n_dst)
    rng = np.random.default_rng(seed)
    src, dst = configuration_bipartite(
        _degree_sequence(n_src, exponent, n_edges, rng),
        _degree_sequence(n_dst, exponent, n_edges, rng),
        seed=rng,
    )
    return _bipartite_graph(n_src, n_dst, src, dst, feature_dim)


@register_scenario(
    "relations",
    params=(
        ScenarioParam("num_types", 4, "vertex-type count"),
        ScenarioParam(
            "num_relations", 6, "base relation count (sweep axis)"
        ),
        ScenarioParam("vertices_per_type", 1024, "vertex count per type"),
        ScenarioParam("edges_per_relation", 4096, "edges per base relation"),
        ScenarioParam("exponent", 0.8, "degree-skew exponent"),
        ScenarioParam("feature_dim", 64, "raw feature dimension per type"),
    ),
    doc="Relation-count sweep: `num_relations` skewed bipartite "
    "relations threaded round-robin over `num_types` vertex types, so "
    "semantic-graph count (and frontend pipelining pressure) is the "
    "swept axis.",
)
def _build_relations(
    *,
    seed,
    scale,
    num_types,
    num_relations,
    vertices_per_type,
    edges_per_relation,
    exponent,
    feature_dim,
):
    if num_types < 2:
        raise ValueError(f"num_types must be at least 2, got {num_types}")
    if num_relations < 1:
        raise ValueError(
            f"num_relations must be positive, got {num_relations}"
        )
    n_per_type = _sized(vertices_per_type, scale)
    n_edges = min(
        _sized(edges_per_relation, scale, minimum=1), n_per_type * n_per_type
    )
    rng = np.random.default_rng(seed)
    types = [f"v{i}" for i in range(num_types)]
    edges: dict[Relation, tuple[np.ndarray, np.ndarray]] = {}
    for k in range(num_relations):
        src_t = types[k % num_types]
        dst_t = types[(k + 1) % num_types]
        src, dst = chung_lu_bipartite(
            n_per_type,
            n_per_type,
            n_edges,
            src_exponent=exponent,
            dst_exponent=exponent,
            seed=rng,
        )
        edges[Relation(src_t, f"rel{k}", dst_t)] = (src, dst)
    return HeteroGraph(
        num_vertices={t: n_per_type for t in types},
        feature_dims={t: feature_dim for t in types},
        edges=_with_reverse(edges),
    )


@register_scenario(
    "community",
    params=(
        ScenarioParam("num_src", 1024, "source-side vertex count"),
        ScenarioParam("num_dst", 1024, "destination-side vertex count"),
        ScenarioParam("num_edges", 8192, "distinct edge count"),
        ScenarioParam("num_blocks", 16, "planted community count"),
        ScenarioParam(
            "mixing", 0.1, "cross-community edge fraction (sweep 0.0-1.0)"
        ),
        ScenarioParam("exponent", 0.8, "within-block degree skew"),
        ScenarioParam("feature_dim", 64, "raw feature dimension, both types"),
    ),
    doc="Planted-community bipartite relation; `mixing` sweeps from "
    "pure blocks (restructuring's best case) to fully unstructured "
    "(its worst).",
)
def _build_community(
    *,
    seed,
    scale,
    num_src,
    num_dst,
    num_edges,
    num_blocks,
    mixing,
    exponent,
    feature_dim,
):
    n_src = _sized(num_src, scale)
    n_dst = _sized(num_dst, scale)
    n_edges = min(_sized(num_edges, scale, minimum=1), n_src * n_dst)
    src, dst = community_bipartite(
        n_src,
        n_dst,
        n_edges,
        num_blocks=max(2, int(round(num_blocks * scale**0.5))),
        mixing=mixing,
        src_exponent=exponent,
        dst_exponent=exponent,
        seed=np.random.default_rng(seed),
    )
    return _bipartite_graph(n_src, n_dst, src, dst, feature_dim)


# ----------------------------------------------------------------------
# Adversarial stress families
# ----------------------------------------------------------------------


@register_scenario(
    "thrash",
    params=(
        ScenarioParam(
            "working_set", 512, "source vertices every destination reads"
        ),
        ScenarioParam("num_dst", 64, "destination vertex count"),
        ScenarioParam("feature_dim", 64, "raw feature dimension, both types"),
    ),
    doc="Worst-case buffer thrash: a complete bipartite relation makes "
    "the NA trace a cyclic scan over `working_set` sources, the exact "
    "LRU pathology — every access with working_set above the buffer "
    "capacity misses, maximizing reuse distance.",
)
def _build_thrash(*, seed, scale, working_set, num_dst, feature_dim):
    n_src = _sized(working_set, scale)
    n_dst = _sized(num_dst, scale)
    # Every destination reads every source, so the destination-major NA
    # trace is [0..n_src) repeated n_dst times: a pure cyclic scan.
    src = np.tile(np.arange(n_src, dtype=np.int64), n_dst)
    dst = np.repeat(np.arange(n_dst, dtype=np.int64), n_src)
    return _bipartite_graph(
        n_src, n_dst, src, dst, feature_dim, relation_name="scans"
    )


@register_scenario(
    "uniform",
    params=(
        ScenarioParam("num_dst", 1024, "destination vertex count"),
        ScenarioParam("degree", 4, "in-degree of every destination"),
        ScenarioParam("feature_dim", 64, "raw feature dimension, both types"),
    ),
    doc="Uniform no-reuse baseline: every source feeds exactly one "
    "destination, so each feature is fetched once and any redundant "
    "DRAM access is a simulator bug. Single-direction by design — a "
    "reverse relation would reintroduce destination-feature reuse.",
)
def _build_uniform(*, seed, scale, num_dst, degree, feature_dim):
    if degree < 1:
        raise ValueError(f"degree must be positive, got {degree}")
    n_dst = _sized(num_dst, scale)
    n_src = n_dst * degree
    # Disjoint source blocks per destination; the id permutation keeps
    # vertex id decorrelated from position, as in real datasets.
    src = np.random.default_rng(seed).permutation(n_src).astype(np.int64)
    dst = np.repeat(np.arange(n_dst, dtype=np.int64), degree)
    relation = Relation("src", "feeds", "dst")
    return HeteroGraph(
        num_vertices={"src": n_src, "dst": n_dst},
        feature_dims={"src": feature_dim, "dst": feature_dim},
        edges={relation: (src, dst)},
    )


@register_scenario(
    "star",
    params=(
        ScenarioParam("num_leaves", 2048, "leaf vertex count"),
        ScenarioParam("num_hubs", 1, "hub vertex count"),
        ScenarioParam("feature_dim", 64, "raw feature dimension, both types"),
    ),
    doc="Single-hub star relations: every leaf attaches to one of "
    "`num_hubs` hubs, the degenerate-skew extreme — hub-side "
    "aggregation touches every leaf feature exactly once while the "
    "reverse direction is maximally hot.",
)
def _build_star(*, seed, scale, num_leaves, num_hubs, feature_dim):
    if num_hubs < 1:
        raise ValueError(f"num_hubs must be positive, got {num_hubs}")
    n_leaves = _sized(num_leaves, scale)
    n_hubs = min(_sized(num_hubs, scale, minimum=1), n_leaves)
    # Hub assignment is a permutation mod n_hubs: balanced loads, with
    # leaf id decorrelated from hub membership.
    perm = np.random.default_rng(seed).permutation(n_leaves).astype(np.int64)
    src = np.arange(n_leaves, dtype=np.int64)
    dst = perm % n_hubs
    relation = Relation("leaf", "orbits", "hub")
    return HeteroGraph(
        num_vertices={"leaf": n_leaves, "hub": n_hubs},
        feature_dims={"leaf": feature_dim, "hub": feature_dim},
        edges=_with_reverse({relation: (src, dst)}),
    )
