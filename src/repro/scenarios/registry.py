"""Decorator-based scenario registry.

A *scenario* is a parameterized workload family: a recipe that turns a
small set of typed parameters (sizes, skew exponents, relation counts)
into a :class:`~repro.graph.hetero.HeteroGraph` on demand. Scenarios
are referenced by a compact textual form everywhere a catalog dataset
name is accepted (``ExperimentSpec.datasets``, ``GridRunner.graph``,
``repro evaluate --scenario``)::

    skew                       # family with every parameter defaulted
    skew:exponent=1.5          # one override
    scale:base=dblp,factor=4   # several overrides

Adding a family to the whole stack (spec validation, grid runner,
artifact store, CLI ``scenarios list``/``describe``) is one decorator
on one builder function::

    from repro.scenarios import ScenarioParam, register_scenario

    @register_scenario(
        "ring",
        params=(ScenarioParam("length", 64, "cycle length"),),
        doc="Single-relation ring graph.",
    )
    def build_ring(*, seed, scale, length):
        ...
        return HeteroGraph(...)

Builders receive the dataset ``seed`` and ``scale`` of the experiment
plus every declared parameter (defaults filled in, overrides coerced to
the default's type) and must be deterministic: the same resolved
parameters, seed and scale always produce a bit-identical graph. That
determinism is what the differential/golden test suite locks in.

The built-in families live in :mod:`repro.scenarios.families` and are
imported lazily on first lookup, mirroring the platform registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.graph.hetero import HeteroGraph

__all__ = [
    "ScenarioParam",
    "ScenarioFamily",
    "register_scenario",
    "unregister_scenario",
    "scenario_names",
    "get_scenario",
    "parse_scenario",
    "is_scenario_ref",
    "resolve_scenario",
    "canonical_scenario",
    "build_scenario",
    "describe_scenario",
]

_REGISTRY: dict[str, "ScenarioFamily"] = {}
_builtins_loaded = False

#: Module defining the built-in families; its own register_scenario
#: calls must not recurse into _ensure_builtins mid-import.
_BUILTIN_MODULE = "repro.scenarios.families"


def _ensure_builtins() -> None:
    """Import the built-in scenario families once."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    import importlib

    importlib.import_module(_BUILTIN_MODULE)
    _builtins_loaded = True


@dataclass(frozen=True)
class ScenarioParam:
    """One declared parameter of a scenario family.

    The default's type is the parameter's type: overrides arriving as
    text (from a ``family:key=value`` reference) or as JSON scalars are
    coerced to it, so ``exponent=2`` and ``exponent=2.0`` resolve to
    the same scenario (and the same artifact-store digest).
    """

    name: str
    default: int | float | str
    doc: str = ""

    def __post_init__(self) -> None:
        if isinstance(self.default, float) and not math.isfinite(self.default):
            raise ValueError(
                f"parameter {self.name!r} declares non-finite default "
                f"{self.default!r}"
            )

    def coerce(self, raw: object) -> int | float | str:
        """Convert one override to this parameter's type.

        Non-finite numerics (``nan``, ``inf``, ``-inf``) are rejected:
        they would poison workload digests (``nan != nan`` makes every
        store lookup a miss) and generator arithmetic.
        """
        kind = type(self.default)
        if kind is str:
            return str(raw)
        try:
            if kind is int:
                if isinstance(raw, float):
                    # Reject silent truncation of float objects: 1.5
                    # is not a valid int (2.0 is). int() raises on a
                    # nan (ValueError) or infinity (OverflowError).
                    as_int = int(raw)
                    if as_int != raw:
                        raise ValueError
                    return as_int
                try:
                    # Integer literals convert exactly at any
                    # magnitude (no float round-trip).
                    return int(raw)
                except (TypeError, ValueError, OverflowError):
                    # Same truncation rule for text: "2e3" is exact,
                    # "1.5" and non-finite spellings are not.
                    as_float = float(raw)
                    as_int = int(as_float)
                    if as_int != as_float:
                        raise ValueError
                    return as_int
            value = float(raw)
        except (TypeError, ValueError, OverflowError):
            raise ValueError(
                f"parameter {self.name!r} expects {kind.__name__}, "
                f"got {raw!r}"
            ) from None
        if not math.isfinite(value):
            raise ValueError(
                f"parameter {self.name!r} expects a finite float, "
                f"got {raw!r}"
            )
        return value


@dataclass(frozen=True)
class ScenarioFamily:
    """A registered workload family (name, parameters, builder)."""

    name: str
    doc: str
    params: tuple[ScenarioParam, ...]
    builder: Callable[..., HeteroGraph] = field(repr=False)

    def param(self, name: str) -> ScenarioParam:
        for param in self.params:
            if param.name == name:
                return param
        known = ", ".join(p.name for p in self.params) or "(none)"
        raise ValueError(
            f"scenario family {self.name!r} has no parameter {name!r}; "
            f"parameters: {known}"
        )

    def resolve(self, overrides: dict[str, object]) -> dict[str, Any]:
        """Full parameter dict: defaults overlaid with coerced overrides."""
        resolved = {p.name: p.default for p in self.params}
        for key, raw in overrides.items():
            resolved[key] = self.param(key).coerce(raw)
        return resolved

    def build(
        self, *, seed: int = 0, scale: float = 1.0, **overrides
    ) -> HeteroGraph:
        """Generate the graph for one sweep point.

        The graph is renamed to the canonical reference so reports and
        store entries self-describe the exact sweep point.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        resolved = self.resolve(overrides)
        graph = self.builder(seed=int(seed), scale=float(scale), **resolved)
        graph.name = _canonical(self, resolved)
        return graph


def register_scenario(
    name: str,
    *,
    params: tuple[ScenarioParam, ...] = (),
    doc: str | None = None,
):
    """Function decorator registering one scenario family."""

    def decorator(builder: Callable[..., HeteroGraph]):
        # Load the builtin families first so registering over a builtin
        # name collides here, at the user's decorator (builtins skip
        # this: they register during that very import).
        if builder.__module__ != _BUILTIN_MODULE:
            _ensure_builtins()
        key = name.lower()
        if ":" in key or "," in key or "=" in key:
            raise ValueError(
                f"scenario family name {name!r} must not contain "
                "':', ',' or '=' (reserved by the reference syntax)"
            )
        # Catalog names win every workload lookup, so a family shadowed
        # by one would silently run the Table 2 dataset instead.
        from repro.graph.datasets import DATASET_SPECS

        if key in DATASET_SPECS:
            raise ValueError(
                f"scenario family name {name!r} collides with a catalog "
                "dataset; pick a different name"
            )
        if key in _REGISTRY:
            raise ValueError(
                f"scenario {name!r} is already registered "
                f"(by {_REGISTRY[key].builder.__qualname__})"
            )
        seen = set()
        for param in params:
            if param.name in seen:
                raise ValueError(
                    f"scenario {name!r} declares parameter "
                    f"{param.name!r} twice"
                )
            seen.add(param.name)
        family = ScenarioFamily(
            name=key,
            doc=(doc if doc is not None else builder.__doc__ or "").strip(),
            params=tuple(params),
            builder=builder,
        )
        _REGISTRY[key] = family
        return builder

    return decorator


def unregister_scenario(name: str) -> None:
    """Remove a registered family (experiment/test cleanup)."""
    _REGISTRY.pop(name.lower(), None)


def scenario_names() -> tuple[str, ...]:
    """All registered family names, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def get_scenario(name: str) -> ScenarioFamily:
    """Look up a family; raises ``ValueError`` when unknown."""
    _ensure_builtins()
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(_REGISTRY)
        raise ValueError(
            f"unknown scenario family {name!r}; known families: {known}"
        ) from None


def parse_scenario(ref: str) -> tuple[str, dict[str, str]]:
    """Split ``family:k=v,k=v`` into the family name and raw overrides.

    Purely syntactic — the family is not looked up and values are not
    coerced (that happens in :func:`resolve_scenario`).
    """
    if not isinstance(ref, str) or not ref.strip():
        raise ValueError(f"empty scenario reference {ref!r}")
    head, sep, rest = ref.partition(":")
    family = head.strip().lower()
    if not family:
        raise ValueError(f"scenario reference {ref!r} names no family")
    overrides: dict[str, str] = {}
    if sep and rest.strip():
        for item in rest.split(","):
            key, eq, value = item.partition("=")
            key, value = key.strip(), value.strip()
            if not eq or not key or not value:
                raise ValueError(
                    f"malformed parameter {item.strip()!r} in scenario "
                    f"reference {ref!r} (expected key=value)"
                )
            if key in overrides:
                raise ValueError(
                    f"duplicate parameter {key!r} in scenario "
                    f"reference {ref!r}"
                )
            overrides[key] = value
    return family, overrides


def is_scenario_ref(name: str) -> bool:
    """Whether ``name`` is plausibly a scenario reference.

    True for anything carrying parameter syntax (``:``) and for bare
    names registered as families. Catalog dataset names (no ``:``,
    not registered) return False.
    """
    if not isinstance(name, str):
        return False
    if ":" in name:
        return True
    _ensure_builtins()
    return name.strip().lower() in _REGISTRY


def resolve_scenario(ref: str) -> tuple[ScenarioFamily, dict[str, Any]]:
    """Family plus fully-resolved (defaults + coerced overrides) params."""
    family_name, overrides = parse_scenario(ref)
    family = get_scenario(family_name)
    return family, family.resolve(overrides)


def _format_value(value: object) -> str:
    # repr is exact for floats (no precision loss) and canonical across
    # processes; ints and strings print plainly.
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _canonical(family: ScenarioFamily, resolved: dict[str, Any]) -> str:
    """Canonical reference: family plus non-default params, declared order."""
    parts = [
        f"{p.name}={_format_value(resolved[p.name])}"
        for p in family.params
        if resolved[p.name] != p.default
    ]
    if not parts:
        return family.name
    return f"{family.name}:{','.join(parts)}"


def canonical_scenario(ref: str) -> str:
    """Normalize a reference (order, defaults, value spelling).

    Two references that resolve to the same sweep point canonicalize to
    the same string, so the grid runner and the session share one set
    of topology artifacts per sweep point no matter how the point was
    spelled.
    """
    family, resolved = resolve_scenario(ref)
    return _canonical(family, resolved)


def build_scenario(
    ref: str, *, seed: int = 0, scale: float = 1.0
) -> HeteroGraph:
    """Generate the graph of one scenario reference."""
    family_name, overrides = parse_scenario(ref)
    return get_scenario(family_name).build(
        seed=seed, scale=scale, **overrides
    )


def describe_scenario(ref: str) -> dict[str, Any]:
    """JSON-friendly description of one family or reference.

    Includes the canonical form, the family doc, and per-parameter
    name / default / resolved value / doc rows (resolved == default for
    a bare family name).
    """
    family, resolved = resolve_scenario(ref)
    return {
        "family": family.name,
        "canonical": _canonical(family, resolved),
        "doc": family.doc,
        "params": [
            {
                "name": p.name,
                "default": p.default,
                "value": resolved[p.name],
                "doc": p.doc,
            }
            for p in family.params
        ],
    }
