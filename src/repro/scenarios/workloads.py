"""One namespace over catalog datasets and scenario references.

Everything downstream of dataset selection — spec validation, the grid
runner, artifact-store addressing, the CLI — goes through these four
functions instead of touching :data:`~repro.graph.datasets.DATASET_SPECS`
or the scenario registry directly:

- :func:`is_catalog_dataset` / :func:`canonical_workload` classify and
  normalize a name (catalog names lower-case, scenario references in
  canonical parameter form), failing eagerly with every known dataset
  *and* family listed.
- :func:`load_workload` builds the graph (catalog generator or
  scenario builder), deterministically in ``(name, seed, scale)``.
- :func:`workload_digest` produces the artifact-store digest of the
  *resolved* workload: for scenarios it covers the full parameter
  dict (defaults included), the seed and the scale, so changing any
  sweep point — or a family's default — is a store miss even when the
  textual name does not change; for catalog datasets it covers the
  :class:`~repro.graph.datasets.DatasetSpec` recipe itself.
"""

from __future__ import annotations

from repro.graph.datasets import DATASET_SPECS, load_dataset
from repro.graph.hetero import HeteroGraph
from repro.scenarios.registry import (
    build_scenario,
    canonical_scenario,
    is_scenario_ref,
    resolve_scenario,
    scenario_names,
)

__all__ = [
    "is_catalog_dataset",
    "canonical_workload",
    "load_workload",
    "workload_digest",
]


def is_catalog_dataset(name: str) -> bool:
    """Whether ``name`` is a Table 2 catalog dataset (not a scenario)."""
    return isinstance(name, str) and name.lower() in DATASET_SPECS


def canonical_workload(name: str) -> str:
    """Validate one dataset/scenario name and return its canonical form.

    Raises:
        ValueError: unknown name, unknown scenario family, or malformed
            scenario parameters.
    """
    if is_catalog_dataset(name):
        return name.lower()
    if is_scenario_ref(name):
        return canonical_scenario(name)
    known = ", ".join(sorted(DATASET_SPECS))
    families = ", ".join(scenario_names())
    raise ValueError(
        f"unknown dataset {name!r}; known datasets: {known}; "
        f"known scenario families (name or name:key=value,...): {families}"
    )


def load_workload(
    name: str, *, seed: int = 0, scale: float = 1.0
) -> HeteroGraph:
    """Build the graph of one catalog dataset or scenario reference."""
    if is_catalog_dataset(name):
        return load_dataset(name, seed=seed, scale=scale)
    if is_scenario_ref(name):
        return build_scenario(name, seed=seed, scale=scale)
    canonical_workload(name)  # raises with the full known-name listing
    raise AssertionError("unreachable")  # pragma: no cover


def workload_digest(name: str, seed: int, scale: float) -> str:
    """Artifact-store digest of one resolved workload.

    Two names digest equally iff they generate bit-identical graphs:
    the digest is computed from the resolved recipe (catalog
    :class:`DatasetSpec` or scenario family + full parameter dict),
    never from the spelling of ``name``.
    """
    from repro.platforms.store import config_digest

    seed, scale = int(seed), float(scale)
    if is_catalog_dataset(name):
        return config_digest(
            "dataset", name.lower(), DATASET_SPECS[name.lower()], seed, scale
        )
    family, resolved = resolve_scenario(name)
    return config_digest(
        "scenario",
        family.name,
        tuple(sorted(resolved.items())),
        seed,
        scale,
    )
