"""The Decoupler: Algorithm 1 in hardware (Fig. 5).

Topology streams in from HBM; the hash table allocates matching FIFOs
to destination vertices; visited/matching bitmaps filter edges; the
matching buffer absorbs FIFO spills. The cycle model is derived from
the algorithm's measured event counts:

- every scanned edge occupies the pipeline for
  ``1 / edges_per_cycle`` cycles (bitmap probes and FIFO pushes are
  pipelined with the scan),
- every hash-set conflict (more live destinations than ways in a set)
  stalls the pipeline for ``decouple_stall_penalty`` cycles while the
  spilled entry moves to the Matching Buffer,
- every augmenting-path flip costs its path length in FIFO pops
  (counted in the matching counters),
- the input topology is streamed once from DRAM (8 B per edge: two
  32-bit vertex ids).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.config import GDRConfig
from repro.frontend.hashtable import HashTable
from repro.graph.semantic import SemanticGraph
from repro.restructure.matching import MatchingResult, maximum_matching_fifo

__all__ = ["DecouplerReport", "Decoupler"]

EDGE_BYTES = 8  # two 32-bit vertex ids per edge


@dataclass
class DecouplerReport:
    """Cycle and traffic cost of decoupling one semantic graph."""

    cycles: int
    dram_bytes_read: int
    fifo_pushes: int
    fifo_pops: int
    hash_conflicts: int
    augmenting_paths: int

    @property
    def edges_per_cycle_achieved(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.fifo_pushes / self.cycles


class Decoupler:
    """Hardware model wrapping the Algorithm 1 dataflow."""

    def __init__(self, config: GDRConfig | None = None) -> None:
        self.config = config or GDRConfig()

    def run(self, graph: SemanticGraph) -> tuple[MatchingResult, DecouplerReport]:
        """Decouple ``graph``; returns the matching and its cost.

        The functional result comes from the faithful FIFO formulation
        (:func:`repro.restructure.matching.maximum_matching_fifo`);
        the hardware cost is derived from its event counters plus a
        hash-conflict replay over the destination stream.
        """
        cfg = self.config
        matching = maximum_matching_fifo(graph)
        counters = matching.counters

        # Replay FIFO allocation through the set-associative hash table
        # to count conflicts: each distinct destination in the edge
        # stream claims a FIFO slot while live. The whole destination
        # stream is probed in one vectorized batch.
        ways = cfg.hash_ways
        num_sets = max(1, cfg.fifo_entries // ways)
        table = HashTable(num_sets, ways)
        table.probe_many(graph.dst)
        conflicts = table.stats.conflicts

        scan_cycles = -(-counters.edges_scanned // cfg.edges_per_cycle)
        pop_cycles = counters.fifo_pops  # path flips serialize on pops
        stall_cycles = conflicts * cfg.decouple_stall_penalty
        # Per-vertex search bookkeeping (Search_List management).
        search_cycles = counters.search_steps
        cycles = scan_cycles + pop_cycles + stall_cycles + search_cycles

        report = DecouplerReport(
            cycles=cycles,
            dram_bytes_read=graph.num_edges * EDGE_BYTES,
            fifo_pushes=counters.fifo_pushes,
            fifo_pops=counters.fifo_pops,
            hash_conflicts=conflicts,
            augmenting_paths=counters.augmenting_paths,
        )
        return matching, report
