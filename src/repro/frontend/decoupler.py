"""The Decoupler: Algorithm 1 in hardware (Fig. 5).

Topology streams in from HBM; the hash table allocates matching FIFOs
to destination vertices; visited/matching bitmaps filter edges; the
matching buffer absorbs FIFO spills. The cycle model is derived from
the algorithm's measured event counts:

- every scanned edge occupies the pipeline for
  ``1 / edges_per_cycle`` cycles (bitmap probes and FIFO pushes are
  pipelined with the scan),
- every hash-set conflict (more live destinations than ways in a set)
  stalls the pipeline for ``decouple_stall_penalty`` cycles while the
  spilled entry moves to the Matching Buffer,
- every augmenting-path flip costs its path length in FIFO pops
  (counted in the matching counters),
- the input topology is streamed once from DRAM (8 B per edge: two
  32-bit vertex ids).

Counter provenance (who increments what):

- ``edges_scanned``, ``fifo_pushes``, ``fifo_pops``, ``search_steps``
  and ``augmenting_paths`` come from the matching engine's
  :class:`~repro.restructure.matching.MatchingCounters` -- pushes
  count both ``Search_List`` entries and ``Matching_FIFO`` stagings,
  pops count search-list pops plus the stale-claim pops of each
  augmenting flip.
- ``hash_conflicts`` comes from replaying the destination stream
  through the set-associative FIFO-allocation table.
- ``cycles`` combines them: edge scans at ``edges_per_cycle``
  throughput, one cycle per FIFO pop (path flips serialize on pops),
  ``decouple_stall_penalty`` cycles per hash conflict, and one
  bookkeeping cycle per search step.

By default both the matching and the conflict replay run on the
vectorized engines (:func:`repro.restructure.matching_vec.maximum_matching_vec`,
:func:`repro.frontend.hashtable.count_fifo_conflicts`); ``naive=True``
selects the original per-edge formulations. The two paths are
bit-identical -- same matching, same counters, same report -- which
the differential suite in ``tests/restructure/test_matching_vec.py``
locks in across the scenario catalog.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.frontend.config import GDRConfig
from repro.frontend.hashtable import HashTable, count_fifo_conflicts
from repro.graph.semantic import SemanticGraph
from repro.restructure.matching import MatchingResult, maximum_matching_fifo
from repro.restructure.matching_vec import maximum_matching_vec

__all__ = ["DecouplerReport", "Decoupler"]

EDGE_BYTES = 8  # two 32-bit vertex ids per edge


@dataclass
class DecouplerReport:
    """Cycle and traffic cost of decoupling one semantic graph."""

    cycles: int
    dram_bytes_read: int
    fifo_pushes: int
    fifo_pops: int
    hash_conflicts: int
    augmenting_paths: int

    @property
    def pushes_per_cycle_achieved(self) -> float:
        """Sustained FIFO-push throughput (pushes per cycle)."""
        if self.cycles == 0:
            return 0.0
        return self.fifo_pushes / self.cycles

    @property
    def edges_per_cycle_achieved(self) -> float:
        """Deprecated alias of :attr:`pushes_per_cycle_achieved`.

        The ratio always divided ``fifo_pushes`` by cycles despite the
        name; use the accurately-named property instead.
        """
        warnings.warn(
            "DecouplerReport.edges_per_cycle_achieved divides fifo_pushes "
            "by cycles; use pushes_per_cycle_achieved",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.pushes_per_cycle_achieved


class Decoupler:
    """Hardware model wrapping the Algorithm 1 dataflow.

    Args:
        config: frontend microarchitecture parameters.
        naive: run the original per-edge matching loop and hash-table
            replay instead of the vectorized engines (bit-identical
            output, reference path).
    """

    def __init__(self, config: GDRConfig | None = None, *, naive: bool = False) -> None:
        self.config = config or GDRConfig()
        self.naive = naive

    def run(self, graph: SemanticGraph) -> tuple[MatchingResult, DecouplerReport]:
        """Decouple ``graph``; returns the matching and its cost.

        The functional result comes from Algorithm 1's FIFO formulation
        (vectorized by default, scalar under ``naive=True``); the
        hardware cost is derived from its event counters plus a
        hash-conflict replay over the destination stream.
        """
        cfg = self.config
        if self.naive:
            matching = maximum_matching_fifo(graph)
        else:
            matching = maximum_matching_vec(graph)
        counters = matching.counters

        # Replay FIFO allocation through the set-associative hash table
        # to count conflicts: each distinct destination in the edge
        # stream claims a FIFO slot while live.
        if self.naive:
            table = HashTable(cfg.hash_sets, cfg.hash_ways)
            table.probe_many(graph.dst)
            conflicts = table.stats.conflicts
        else:
            conflicts = count_fifo_conflicts(
                graph.dst, cfg.hash_sets, cfg.hash_ways
            )

        scan_cycles = -(-counters.edges_scanned // cfg.edges_per_cycle)
        pop_cycles = counters.fifo_pops  # path flips serialize on pops
        stall_cycles = conflicts * cfg.decouple_stall_penalty
        # Per-vertex search bookkeeping (Search_List management).
        search_cycles = counters.search_steps
        cycles = scan_cycles + pop_cycles + stall_cycles + search_cycles

        report = DecouplerReport(
            cycles=cycles,
            dram_bytes_read=graph.num_edges * EDGE_BYTES,
            fifo_pushes=counters.fifo_pushes,
            fifo_pops=counters.fifo_pops,
            hash_conflicts=conflicts,
            augmenting_paths=counters.augmenting_paths,
        )
        return matching, report
