"""GDR-HGNN platform adapter: frontend + accelerator as one entry."""

from __future__ import annotations

from repro.accelerator.hihgnn import SimulationReport
from repro.frontend.gdr import GDRHGNNSystem
from repro.platforms.base import DatasetArtifacts, Platform
from repro.platforms.registry import register_platform

__all__ = ["GDRHGNNPlatform"]


@register_platform("hihgnn+gdr")
class GDRHGNNPlatform(Platform):
    """HiHGNN fed by the pipelined GDR-HGNN restructuring frontend."""

    def simulate(
        self, model_name: str, artifacts: DatasetArtifacts, **kwargs
    ) -> SimulationReport:
        system = GDRHGNNSystem(
            self.context.accelerator,
            self.context.frontend,
            self.context.model_config,
        )
        report = system.run(
            artifacts.graph,
            model_name,
            semantic_graphs=artifacts.semantic_graphs,
            **kwargs,
        )
        return self._labelled(report)

    def digest_sources(self) -> tuple:
        return (
            self.context.accelerator,
            self.context.frontend,
            self.context.model_config,
        )
