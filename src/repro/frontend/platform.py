"""GDR-HGNN platform adapter: frontend + accelerator as one entry."""

from __future__ import annotations

from repro.accelerator.hihgnn import SimulationReport
from repro.frontend.gdr import GDRHGNNSystem
from repro.platforms.base import DatasetArtifacts, Platform
from repro.platforms.registry import register_platform

__all__ = ["GDRHGNNPlatform"]


@register_platform("hihgnn+gdr")
class GDRHGNNPlatform(Platform):
    """HiHGNN fed by the pipelined GDR-HGNN restructuring frontend.

    ``simulate(..., naive=True)`` runs the frontend's original
    per-edge reference loops instead of the vectorized engines; the
    reports are bit-identical either way (CI asserts the evaluate
    goldens match with the vectorized default).
    """

    def simulate(
        self,
        model_name: str,
        artifacts: DatasetArtifacts,
        *,
        naive: bool = False,
        **kwargs,
    ) -> SimulationReport:
        system = GDRHGNNSystem(
            self.context.accelerator,
            self.context.frontend,
            self.context.model_config,
            naive=naive,
        )
        report = system.run(
            artifacts.graph,
            model_name,
            semantic_graphs=artifacts.semantic_graphs,
            **kwargs,
        )
        return self._labelled(report)

    def digest_sources(self) -> tuple:
        return (
            self.context.accelerator,
            self.context.frontend,
            self.context.model_config,
        )
