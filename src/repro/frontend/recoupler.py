"""The Recoupler: Algorithm 2 in hardware (Fig. 6).

The Candidate Buffer feeds backbone candidates to the Backbone
Searcher, which reads each candidate's adjacency from the Src/Dst
adjacency buffers, checks neighbors against the Matching Bitmap, and
routes vertices into the four classification FIFOs
(``Src_in``/``Src_out``/``Dst_in``/``Dst_out``). The Graph Generator
drains the FIFOs into the three restructured subgraphs, which stream
out to the accelerator.

Cycle model:

- the Backbone Searcher processes ``recouple_ports`` candidate
  neighbors per cycle (adjacency reads pipeline with bitmap checks),
- the Graph Generator emits one edge per cycle,
- adjacency lists not resident in the 320 KB adjacency buffer stream
  from DRAM (8 B per edge).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.config import GDRConfig
from repro.graph.semantic import SemanticGraph
from repro.restructure.backbone import BackbonePartition, select_backbone
from repro.restructure.matching import MatchingResult
from repro.restructure.recouple import RestructureResult, recouple

__all__ = ["RecouplerReport", "Recoupler"]

EDGE_BYTES = 8


@dataclass
class RecouplerReport:
    """Cycle and traffic cost of recoupling one semantic graph."""

    cycles: int
    dram_bytes_read: int
    dram_bytes_written: int
    candidates_processed: int
    edges_emitted: int


class Recoupler:
    """Hardware model of backbone selection + subgraph generation."""

    def __init__(
        self,
        config: GDRConfig | None = None,
        backbone_strategy: str = "konig",
        community_budget: int = 256,
        *,
        naive: bool = False,
    ) -> None:
        self.config = config or GDRConfig()
        self.backbone_strategy = backbone_strategy
        self.community_budget = community_budget
        self.naive = naive

    def run(
        self, graph: SemanticGraph, matching: MatchingResult
    ) -> tuple[RestructureResult, RecouplerReport]:
        """Recouple ``graph`` given its decoupling result."""
        cfg = self.config
        partition: BackbonePartition = select_backbone(
            graph, matching, self.backbone_strategy, naive=self.naive
        )
        result = recouple(
            graph,
            matching,
            partition,
            community_budget=self.community_budget,
            naive=self.naive,
        )

        candidates = matching.size * 2  # matched sources and destinations
        # Backbone search touches each candidate's adjacency once.
        matched_src = matching.matched_src()
        matched_dst = matching.matched_dst()
        src_deg = graph.src_degrees()
        dst_deg = graph.dst_degrees()
        neighbor_reads = int(src_deg[matched_src].sum() + dst_deg[matched_dst].sum())
        search_cycles = -(-neighbor_reads // cfg.recouple_ports)

        edges_emitted = sum(sub.num_edges for sub in result.subgraphs)
        generate_cycles = edges_emitted  # one edge out per cycle

        # Adjacency beyond the on-chip buffer streams from DRAM.
        adj_bytes = graph.num_edges * EDGE_BYTES
        resident = min(adj_bytes, cfg.adj_buffer_bytes)
        dram_read = max(0, adj_bytes - resident)
        # Restructured topology streams to the accelerator through DRAM
        # only when the direct FIFO channel back-pressures; the common
        # case forwards on-chip, so only the emitted schedule metadata
        # (one id per scheduled destination) is written back.
        dram_written = sum(len(s) for s in result.dst_schedules) * 4

        report = RecouplerReport(
            cycles=search_cycles + generate_cycles,
            dram_bytes_read=dram_read,
            dram_bytes_written=dram_written,
            candidates_processed=candidates,
            edges_emitted=edges_emitted,
        )
        return result, report
