"""GDR-HGNN frontend configuration (Table 3, right column)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GDRConfig"]

KB = 1 << 10


@dataclass(frozen=True)
class GDRConfig:
    """Microarchitectural parameters of the frontend.

    Table 3 gives the storage budget: 8 KB of FIFOs, a 160 KB matching
    buffer, a 160 KB candidate buffer and a 320 KB adjacency-list
    buffer. Throughput parameters model the pipelined datapath: one
    edge enters the Decoupler per cycle when no FIFO conflict stalls
    it, and the Recoupler classifies one vertex/edge per cycle per
    port.

    Attributes:
        clock_ghz: frontend clock, shared with the accelerator (1 GHz).
        fifo_bytes: total FIFO storage (8 KB).
        matching_buffer_bytes: Matching Buffer capacity (160 KB).
        candidate_buffer_bytes: Candidate Buffer capacity (160 KB).
        adj_buffer_bytes: Src+Dst adjacency-list buffer (320 KB).
        entry_bytes: bytes per vertex-id entry (32-bit ids).
        hash_ways: set-associativity of the FIFO-allocating hash table.
        edges_per_cycle: Decoupler edge-scan throughput.
        decouple_stall_penalty: cycles lost per FIFO-conflict stall.
        recouple_ports: vertices classified per cycle by the Backbone
            Searcher.
    """

    clock_ghz: float = 1.0
    fifo_bytes: int = 8 * KB
    matching_buffer_bytes: int = 160 * KB
    candidate_buffer_bytes: int = 160 * KB
    adj_buffer_bytes: int = 320 * KB
    entry_bytes: int = 4
    hash_ways: int = 4
    edges_per_cycle: int = 1
    decouple_stall_penalty: int = 2
    recouple_ports: int = 2

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock must be positive")
        if min(
            self.fifo_bytes,
            self.matching_buffer_bytes,
            self.candidate_buffer_bytes,
            self.adj_buffer_bytes,
            self.entry_bytes,
        ) <= 0:
            raise ValueError("storage sizes must be positive")
        if self.hash_ways <= 0:
            raise ValueError("hash_ways must be positive")
        if self.fifo_entries < self.hash_ways:
            raise ValueError(
                f"fifo_bytes provides only {self.fifo_entries} FIFO "
                f"entries, fewer than hash_ways={self.hash_ways}: the "
                "hash table cannot fill even one set from the physical "
                "FIFO pool"
            )

    @property
    def fifo_entries(self) -> int:
        """Total vertex-id slots across all matching FIFOs."""
        return self.fifo_bytes // self.entry_bytes

    @property
    def hash_sets(self) -> int:
        """Hash-table sets backing the FIFO pool.

        Rounded down so the modeled slot capacity
        (``hash_sets * hash_ways``) never exceeds the physical
        ``fifo_entries``; ``__post_init__`` guarantees at least one
        full set.
        """
        return self.fifo_entries // self.hash_ways

    @property
    def candidate_entries(self) -> int:
        return self.candidate_buffer_bytes // self.entry_bytes

    @property
    def total_buffer_bytes(self) -> int:
        return (
            self.fifo_bytes
            + self.matching_buffer_bytes
            + self.candidate_buffer_bytes
            + self.adj_buffer_bytes
        )
