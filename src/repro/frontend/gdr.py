"""GDR-HGNN frontend and its pipelined integration with HiHGNN.

The frontend restructures semantic graphs *on the fly*: while the
accelerator executes graph ``k``, the Decoupler/Recoupler work on graph
``k+1`` ("GDR-HGNN continuously receives and restructures the next
semantic graph", §4.3). Only the first graph's restructuring latency is
fully exposed; later frontend work hides behind accelerator execution
unless the frontend is slower.

:class:`GDRHGNNSystem` performs that overlap with an explicit
ready-time simulation: the accelerator may start graph ``i`` no earlier
than the frontend finishes it and no earlier than the owning lane is
free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.accelerator.config import HiHGNNConfig
from repro.accelerator.hihgnn import HiHGNNSimulator, SimulationReport
from repro.accelerator.scheduler import similarity_schedule
from repro.frontend.config import GDRConfig
from repro.frontend.decoupler import Decoupler, DecouplerReport
from repro.frontend.recoupler import Recoupler, RecouplerReport
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs
from repro.models.base import ModelConfig
from repro.restructure.recouple import RestructureResult

__all__ = ["FrontendReport", "GDRFrontend", "GDRHGNNSystem"]


@dataclass
class FrontendReport:
    """Combined Decoupler + Recoupler cost for one semantic graph."""

    relation: str
    decoupler: DecouplerReport
    recoupler: RecouplerReport

    @property
    def cycles(self) -> int:
        # Decoupling and recoupling of the *same* graph serialize
        # (recoupling needs the full candidate set).
        return self.decoupler.cycles + self.recoupler.cycles

    @property
    def dram_bytes_read(self) -> int:
        return self.decoupler.dram_bytes_read + self.recoupler.dram_bytes_read

    @property
    def dram_bytes_written(self) -> int:
        return self.recoupler.dram_bytes_written


class GDRFrontend:
    """The complete frontend: decouple, then recouple, with cycle cost.

    Args:
        config: frontend microarchitecture parameters.
        backbone_strategy: passed to the Recoupler (``"konig"`` default).
        max_depth: recursive restructuring depth. The paper notes the
            method "can be applied to subgraphs to generate smaller
            sub-subgraphs"; each recursion re-runs both hardware units
            on the subgraphs, and all costs accumulate.
        min_edges: recursion cut-off.
        naive: run both hardware units on the original per-edge
            reference loops instead of the vectorized engines
            (bit-identical output).
    """

    def __init__(
        self,
        config: GDRConfig | None = None,
        *,
        backbone_strategy: str = "konig",
        max_depth: int = 0,
        min_edges: int = 64,
        community_budget: int = 256,
        naive: bool = False,
    ) -> None:
        self.config = config or GDRConfig()
        self.decoupler = Decoupler(self.config, naive=naive)
        self.recoupler = Recoupler(
            self.config, backbone_strategy, community_budget, naive=naive
        )
        self.max_depth = max_depth
        self.min_edges = min_edges

    def restructure(
        self, graph: SemanticGraph
    ) -> tuple[RestructureResult, FrontendReport]:
        """Restructure one semantic graph, reporting hardware cost."""
        return self._restructure(graph, depth=0)

    def _restructure(
        self, graph: SemanticGraph, depth: int
    ) -> tuple[RestructureResult, FrontendReport]:
        matching, dec_report = self.decoupler.run(graph)
        result, rec_report = self.recoupler.run(graph, matching)
        report = FrontendReport(
            relation=str(graph.relation),
            decoupler=dec_report,
            recoupler=rec_report,
        )
        if depth < self.max_depth:
            children: list[RestructureResult | None] = []
            for sub in result.subgraphs:
                if sub.num_edges >= self.min_edges:
                    child, child_report = self._restructure(sub, depth + 1)
                    children.append(child)
                    # Fold the child's full counter set into the parent
                    # report, not just cycles and DRAM traffic --
                    # recursive runs previously dropped the event
                    # counters, skewing every per-counter derived rate.
                    parent_dec, child_dec = report.decoupler, child_report.decoupler
                    parent_dec.cycles += child_dec.cycles
                    parent_dec.dram_bytes_read += child_dec.dram_bytes_read
                    parent_dec.fifo_pushes += child_dec.fifo_pushes
                    parent_dec.fifo_pops += child_dec.fifo_pops
                    parent_dec.hash_conflicts += child_dec.hash_conflicts
                    parent_dec.augmenting_paths += child_dec.augmenting_paths
                    parent_rec, child_rec = report.recoupler, child_report.recoupler
                    parent_rec.cycles += child_rec.cycles
                    parent_rec.dram_bytes_read += child_rec.dram_bytes_read
                    parent_rec.dram_bytes_written += child_rec.dram_bytes_written
                    parent_rec.candidates_processed += child_rec.candidates_processed
                    parent_rec.edges_emitted += child_rec.edges_emitted
                else:
                    children.append(None)
            result.children = children
        return result, report


@dataclass
class SystemRunArtifacts:
    """Intermediate artifacts of one system run (exposed for analysis)."""

    frontend_reports: list[FrontendReport] = field(default_factory=list)
    restructure_results: dict[str, RestructureResult] = field(default_factory=dict)


class GDRHGNNSystem:
    """HiHGNN + GDR-HGNN with pipelined frontend/accelerator execution."""

    def __init__(
        self,
        accelerator_config: HiHGNNConfig | None = None,
        frontend_config: GDRConfig | None = None,
        model_config: ModelConfig | None = None,
        *,
        max_depth: int = 0,
        community_budget: int | None = None,
        naive: bool = False,
    ) -> None:
        self.accelerator = HiHGNNSimulator(accelerator_config, model_config)
        if community_budget is None:
            # The Recoupler's community size tracks the NA buffer: one
            # community's sources should occupy a fraction of the
            # source-feature capacity so several communities coexist.
            entries = (
                self.accelerator.config.lane_na_src_bytes
                // self.accelerator.model_config.feature_vector_bytes
            )
            community_budget = max(32, entries // 16)
        self.frontend = GDRFrontend(
            frontend_config,
            max_depth=max_depth,
            community_budget=community_budget,
            naive=naive,
        )

    def run(
        self,
        graph: HeteroGraph,
        model_name: str,
        *,
        semantic_graphs: list[SemanticGraph] | None = None,
        artifacts: SystemRunArtifacts | None = None,
    ) -> SimulationReport:
        """Simulate the combined system on one dataset and model.

        Returns a :class:`SimulationReport` whose ``total_cycles``
        includes exposed frontend latency, whose DRAM statistics merge
        frontend topology traffic with accelerator traffic, and whose
        ``frontend_cycles`` records the frontend's total busy time.
        """
        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)
        order = similarity_schedule(semantic_graphs)
        ordered = [semantic_graphs[i] for i in order]

        frontend_reports: list[FrontendReport] = []
        restructured: dict[str, RestructureResult] = {}
        for sg in ordered:
            result, report = self.frontend.restructure(sg)
            frontend_reports.append(report)
            restructured[str(sg.relation)] = result

        accel = self.accelerator.run(
            graph,
            model_name,
            restructured=restructured,
            use_similarity_schedule=False,
            semantic_graphs=ordered,
            platform_name="hihgnn+gdr",
        )

        # Ready-time pipeline: frontend finishes graphs back-to-back;
        # the accelerator starts each graph when both the frontend
        # output and the owning lane are available.
        num_lanes = self.accelerator.config.num_lanes
        lane_free = [0] * num_lanes
        frontend_clock = 0
        for record, freport in zip(accel.graph_records, frontend_reports):
            frontend_clock += freport.cycles
            lane = record["lane"]
            start = max(lane_free[lane], frontend_clock)
            lane_free[lane] = start + record["cycles"]
        pipelined_total = max(lane_free) if lane_free else 0

        frontend_cycles = sum(r.cycles for r in frontend_reports)
        frontend_read = sum(r.dram_bytes_read for r in frontend_reports)
        frontend_written = sum(r.dram_bytes_written for r in frontend_reports)

        accel.total_cycles = max(accel.total_cycles, pipelined_total)
        accel.frontend_cycles = frontend_cycles
        accel.dram.bytes_read += frontend_read
        accel.dram.bytes_written += frontend_written
        # Topology streams count as one access per super-row chunk.
        chunk = self.accelerator.config.hbm.row_bytes * (
            self.accelerator.config.hbm.num_channels
        )
        accel.dram.reads += -(-frontend_read // chunk) if frontend_read else 0
        accel.dram.writes += -(-frontend_written // chunk) if frontend_written else 0
        peak = self.accelerator.config.hbm.peak_bytes_per_cycle
        accel._bw_util = (
            min(1.0, accel.dram.total_bytes / (peak * accel.total_cycles))
            if accel.total_cycles
            else 0.0
        )

        if artifacts is not None:
            artifacts.frontend_reports = frontend_reports
            artifacts.restructure_results = restructured
        return accel
