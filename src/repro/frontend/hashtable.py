"""Set-associative hash table allocating matching FIFOs to vertices.

The Decoupler cannot afford one physical FIFO per destination vertex;
instead a hash table maps vertex ids onto a fixed pool of FIFO slots,
"organized in a set-associative manner" (§4.3). Conflicts (more live
vertices hashing to a set than it has ways) force a spill to the
Matching Buffer, which the cycle model charges as a stall.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HashTableStats", "HashTable"]


@dataclass
class HashTableStats:
    lookups: int = 0
    inserts: int = 0
    conflicts: int = 0  # insert found the set full -> matching-buffer spill
    evictions: int = 0


class HashTable:
    """Maps vertex ids to FIFO slots with bounded associativity.

    Args:
        num_sets: number of hash sets.
        ways: slots per set.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._sets: list[dict[int, int]] = [dict() for _ in range(num_sets)]
        self._next_slot = 0
        self.stats = HashTableStats()

    def _set_of(self, key: int) -> int:
        # Multiplicative hashing spreads consecutive vertex ids.
        return (key * 2654435761 & 0xFFFFFFFF) % self.num_sets

    def lookup(self, key: int) -> int | None:
        """Slot currently assigned to ``key``, or None."""
        self.stats.lookups += 1
        return self._sets[self._set_of(key)].get(key)

    def insert(self, key: int) -> tuple[int, bool]:
        """Assign a slot to ``key``.

        Returns:
            ``(slot, conflicted)`` -- ``conflicted`` is True when the
            set was full and the oldest occupant was displaced (a
            Matching Buffer spill in hardware).
        """
        self.stats.inserts += 1
        bucket = self._sets[self._set_of(key)]
        if key in bucket:
            return bucket[key], False
        conflicted = False
        if len(bucket) >= self.ways:
            oldest = next(iter(bucket))
            del bucket[oldest]
            self.stats.conflicts += 1
            self.stats.evictions += 1
            conflicted = True
        slot = self._next_slot
        self._next_slot += 1
        bucket[key] = slot
        return slot, conflicted

    def remove(self, key: int) -> None:
        """Free ``key``'s slot if present."""
        self._sets[self._set_of(key)].pop(key, None)

    def clear(self) -> None:
        """Flush all sets (between semantic graphs); stats persist."""
        for bucket in self._sets:
            bucket.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
