"""Set-associative hash table allocating matching FIFOs to vertices.

The Decoupler cannot afford one physical FIFO per destination vertex;
instead a hash table maps vertex ids onto a fixed pool of FIFO slots,
"organized in a set-associative manner" (§4.3). Conflicts (more live
vertices hashing to a set than it has ways) force a spill to the
Matching Buffer, which the cycle model charges as a stall.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HashTableStats", "HashTable", "count_fifo_conflicts"]


def count_fifo_conflicts(keys: np.ndarray, num_sets: int, ways: int) -> int:
    """Conflicts a fresh table would record replaying ``keys``.

    Bit-identical to ``HashTable(num_sets, ways).probe_many(keys)``
    followed by ``stats.conflicts`` (differential-tested across the
    scenario catalog), but without materializing slot assignments: all
    sets replay their probe substreams *simultaneously*, one stream
    position per step. Two reductions keep the step count small:

    - consecutive repeats of one key within a set are guaranteed hits
      (nothing was inserted in between), so runs collapse first;
    - a set whose distinct-key count fits its associativity can never
      evict, so only genuinely overflowing sets are simulated.

    Each simulated set is a circular buffer of its last ``ways``
    inserted keys -- exactly the insertion-ordered dict eviction of
    :meth:`HashTable.insert` (hits do not refresh FIFO position).
    """
    if num_sets <= 0 or ways <= 0:
        raise ValueError("num_sets and ways must be positive")
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    if keys.size == 0:
        return 0
    sets = ((keys * 2654435761) & 0xFFFFFFFF) % num_sets
    order = np.argsort(sets, kind="stable")
    set_sorted = sets[order]
    key_sorted = keys[order]
    keep = np.ones(keys.size, dtype=bool)
    keep[1:] = (key_sorted[1:] != key_sorted[:-1]) | (
        set_sorted[1:] != set_sorted[:-1]
    )
    set_sorted = set_sorted[keep]
    key_sorted = key_sorted[keep]

    span = int(keys.max()) + 1
    distinct = np.unique(set_sorted * span + key_sorted)
    distinct_per_set = np.bincount(distinct // span, minlength=num_sets)
    busy = distinct_per_set > ways
    if not busy.any():
        return 0
    probe = busy[set_sorted]
    set_sorted = set_sorted[probe]
    key_sorted = key_sorted[probe]
    row_of = np.cumsum(busy) - 1
    rows = row_of[set_sorted]
    num_rows = int(busy.sum())

    # Column = position within the set's collapsed substream; step the
    # simulation one column at a time across every busy set at once.
    counts = np.bincount(rows, minlength=num_rows)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    col = np.arange(rows.size, dtype=np.int64) - starts[rows]
    by_col = np.argsort(col, kind="stable")
    col_sorted = col[by_col]
    row_by_col = rows[by_col]
    key_by_col = key_sorted[by_col]
    depth = int(counts.max())
    bounds = np.searchsorted(col_sorted, np.arange(depth + 1))

    # Way-major layout: the hit test is `ways` 1-D compares, and an
    # insert is one flat scatter at ``head * num_rows + row``.
    bucket = np.full(ways * num_rows, -1, dtype=np.int64)
    head = np.zeros(num_rows, dtype=np.int64)
    occupancy = np.zeros(num_rows, dtype=np.int64)
    conflicts = 0
    for step in range(depth):
        lo, hi = bounds[step], bounds[step + 1]
        row = row_by_col[lo:hi]
        key = key_by_col[lo:hi]
        hit = bucket[row] == key
        for way in range(1, ways):
            hit |= bucket[way * num_rows + row] == key
        row = row[~hit]
        key = key[~hit]
        conflicts += int(np.count_nonzero(occupancy[row] >= ways))
        bucket[head[row] * num_rows + row] = key
        head[row] = (head[row] + 1) % ways
        occupancy[row] += 1
    return conflicts


@dataclass
class HashTableStats:
    lookups: int = 0
    inserts: int = 0
    conflicts: int = 0  # insert found the set full -> matching-buffer spill
    evictions: int = 0


class HashTable:
    """Maps vertex ids to FIFO slots with bounded associativity.

    Args:
        num_sets: number of hash sets.
        ways: slots per set.
    """

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or ways <= 0:
            raise ValueError("num_sets and ways must be positive")
        self.num_sets = num_sets
        self.ways = ways
        self._sets: list[dict[int, int]] = [dict() for _ in range(num_sets)]
        self._next_slot = 0
        self.stats = HashTableStats()

    def _set_of(self, key: int) -> int:
        # Multiplicative hashing spreads consecutive vertex ids.
        return (key * 2654435761 & 0xFFFFFFFF) % self.num_sets

    def lookup(self, key: int) -> int | None:
        """Slot currently assigned to ``key``, or None."""
        self.stats.lookups += 1
        return self._sets[self._set_of(key)].get(key)

    def insert(self, key: int) -> tuple[int, bool]:
        """Assign a slot to ``key``.

        Returns:
            ``(slot, conflicted)`` -- ``conflicted`` is True when the
            set was full and the oldest occupant was displaced (a
            Matching Buffer spill in hardware).
        """
        self.stats.inserts += 1
        bucket = self._sets[self._set_of(key)]
        if key in bucket:
            return bucket[key], False
        conflicted = False
        if len(bucket) >= self.ways:
            oldest = next(iter(bucket))
            del bucket[oldest]
            self.stats.conflicts += 1
            self.stats.evictions += 1
            conflicted = True
        slot = self._next_slot
        self._next_slot += 1
        bucket[key] = slot
        return slot, conflicted

    def probe_many(self, keys: np.ndarray) -> int:
        """Replay the Decoupler's lookup / insert-on-miss stream at once.

        Equivalent to ``for k in keys: lookup(k) is None and insert(k)``
        -- same statistics, slot numbering and final set contents --
        but vectorized: sets whose live-destination count fits their
        associativity (the vast majority) are resolved with one
        first-occurrence pass; only genuinely overflowing or pre-
        populated sets replay their FIFO exactly.

        Args:
            keys: non-negative vertex ids in stream order.

        Returns:
            Number of FIFO slots allocated (i.e. inserts performed).
        """
        keys = np.ascontiguousarray(keys, dtype=np.int64)
        n = keys.shape[0]
        self.stats.lookups += n
        if n == 0:
            return 0
        sv = ((keys * 2654435761) & 0xFFFFFFFF) % self.num_sets
        # First occurrence of each (set, key) pair, via one packed sort.
        P = 1 << (n - 1).bit_length() if n > 1 else 1
        comp = sv * (keys.max() + 1) + keys
        sp = np.sort(comp * P + np.arange(n, dtype=np.int64))
        pos_sorted = sp & (P - 1)
        same = (sp // P)[1:] == (sp // P)[:-1]
        first = np.ones(n, dtype=bool)
        first[pos_sorted[1:][same]] = False
        distinct_per_set = np.bincount(sv[first], minlength=self.num_sets)

        touched = np.flatnonzero(distinct_per_set)
        slow = [
            int(s)
            for s in touched.tolist()
            if self._sets[s] or distinct_per_set[s] > self.ways
        ]
        miss = first
        conflicts = 0
        slow_set = set(slow)
        if slow:
            # Exact FIFO replay for the exceptional sets; fresh inserts
            # temporarily store ``-position - 1`` so they can be told
            # apart from pre-existing slot numbers when slots are
            # assigned globally below.
            so = np.sort(sv * P + np.arange(n, dtype=np.int64)) & (P - 1)
            sv_sorted = sv[so]
            for s in slow:
                lo = np.searchsorted(sv_sorted, s, side="left")
                hi = np.searchsorted(sv_sorted, s, side="right")
                bucket = self._sets[s]
                for p in so[lo:hi].tolist():
                    k = int(keys[p])
                    if k in bucket:
                        miss[p] = False
                        continue
                    miss[p] = True
                    if len(bucket) >= self.ways:
                        oldest = next(iter(bucket))
                        del bucket[oldest]
                        conflicts += 1
                    bucket[k] = -p - 1
        # Slots follow global insert order, exactly as the scalar path.
        insert_pos = np.flatnonzero(miss)
        slot_base = self._next_slot
        slot_of = {int(p): slot_base + i for i, p in enumerate(insert_pos)}
        self._next_slot = slot_base + len(insert_pos)
        for s in slow:
            bucket = self._sets[s]
            for k, v in bucket.items():
                if v < 0:
                    bucket[k] = slot_of[-v - 1]
        for p in insert_pos.tolist():
            s = int(sv[p])
            if s not in slow_set:
                self._sets[s][int(keys[p])] = slot_of[p]
        inserts = int(len(insert_pos))
        self.stats.inserts += inserts
        self.stats.conflicts += conflicts
        self.stats.evictions += conflicts
        return inserts

    def remove(self, key: int) -> None:
        """Free ``key``'s slot if present."""
        self._sets[self._set_of(key)].pop(key, None)

    def clear(self) -> None:
        """Flush all sets (between semantic graphs); stats persist."""
        for bucket in self._sets:
            bucket.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
