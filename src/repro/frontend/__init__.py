"""GDR-HGNN: the hardware frontend (Fig. 4).

Maps the graph restructuring method into microarchitecture:

- :class:`~repro.frontend.decoupler.Decoupler` -- hash table,
  set-associative matching FIFOs, visited/matching bitmaps, and the
  matching & candidate buffers; executes Algorithm 1 and reports its
  cycle cost.
- :class:`~repro.frontend.recoupler.Recoupler` -- backbone searcher,
  adjacency-list buffers and the four classification FIFOs
  (``Src_in/Src_out/Dst_in/Dst_out``) feeding the graph generator;
  executes Algorithm 2.
- :class:`~repro.frontend.gdr.GDRFrontend` -- the complete frontend,
  and :class:`~repro.frontend.gdr.GDRHGNNSystem` -- the pipelined
  combination with the HiHGNN model in which the frontend restructures
  semantic graph *k+1* while the accelerator executes graph *k*.
"""

from repro.frontend.config import GDRConfig
from repro.frontend.hashtable import HashTable, count_fifo_conflicts
from repro.frontend.bitmap import Bitmap
from repro.frontend.decoupler import Decoupler, DecouplerReport
from repro.frontend.recoupler import Recoupler, RecouplerReport
from repro.frontend.gdr import FrontendReport, GDRFrontend, GDRHGNNSystem

__all__ = [
    "GDRConfig",
    "HashTable",
    "count_fifo_conflicts",
    "Bitmap",
    "Decoupler",
    "DecouplerReport",
    "Recoupler",
    "RecouplerReport",
    "FrontendReport",
    "GDRFrontend",
    "GDRHGNNSystem",
]
