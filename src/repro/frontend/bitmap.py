"""Bitmaps of the Decoupler/Recoupler (visited and matching bitmaps)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BitmapStats", "Bitmap"]


@dataclass
class BitmapStats:
    reads: int = 0
    writes: int = 0
    clears: int = 0


class Bitmap:
    """A single-cycle-access bit vector over vertex ids.

    Hardware bitmaps answer "visited?" / "matched?" in one cycle; the
    model tracks access counts so the cycle model can charge them (in
    practice they pipeline with edge scans and cost area, not time).
    """

    def __init__(self, num_bits: int, name: str = "bitmap") -> None:
        if num_bits <= 0:
            raise ValueError("num_bits must be positive")
        self.name = name
        self._bits = np.zeros(num_bits, dtype=bool)
        self.stats = BitmapStats()

    def __len__(self) -> int:
        return len(self._bits)

    def test(self, index: int) -> bool:
        self.stats.reads += 1
        return bool(self._bits[index])

    def set(self, index: int, value: bool = True) -> None:
        self.stats.writes += 1
        self._bits[index] = value

    def set_many(self, indices: np.ndarray, value: bool = True) -> None:
        self.stats.writes += len(indices)
        self._bits[indices] = value

    def test_many(self, indices: np.ndarray) -> np.ndarray:
        self.stats.reads += len(indices)
        return self._bits[indices].copy()

    def count(self) -> int:
        """Population count (a dedicated reduction tree in hardware)."""
        return int(self._bits.sum())

    def clear(self) -> None:
        self._bits[:] = False
        self.stats.clears += 1

    @property
    def storage_bytes(self) -> int:
        return (len(self._bits) + 7) // 8
