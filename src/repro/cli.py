"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``evaluate``  -- run the §5 evaluation grid and print Figures 7/8/9.
- ``platforms`` -- list the registered execution platforms.
- ``thrash``    -- print Fig. 2 style replacement histograms.
- ``restructure`` -- restructure one dataset's semantic graphs and
  print backbone/subgraph statistics.
- ``datasets``  -- print Table 2 style dataset statistics.
- ``area``      -- print the Fig. 10 area/power breakdown.

``evaluate`` runs through the platform registry and the parallel grid
runner (``--platforms``, ``--jobs``) and persists simulation reports in
the on-disk artifact store (``$REPRO_ARTIFACT_DIR``, disable with
``--no-cache``), so repeated invocations are warm-cache.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GDR-HGNN (DAC 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    evaluate = sub.add_parser("evaluate", help="run the evaluation grid")
    evaluate.add_argument("--scale", type=float, default=0.3)
    evaluate.add_argument("--models", default="rgcn",
                          help="comma-separated model list")
    evaluate.add_argument("--datasets", default="acm,imdb,dblp")
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--platforms", default=None,
                          help="comma-separated platform list "
                               "(default: the four paper platforms)")
    evaluate.add_argument("--jobs", type=int, default=1,
                          help="grid worker count (1 = serial)")
    evaluate.add_argument("--no-cache", action="store_true",
                          help="skip the on-disk artifact store")
    evaluate.add_argument("--cache-dir", default=None,
                          help="artifact store directory "
                               "(default: $REPRO_ARTIFACT_DIR or "
                               "~/.cache/repro/artifacts)")

    platforms = sub.add_parser(
        "platforms", help="list registered execution platforms"
    )
    platforms.add_argument("-v", "--verbose", action="store_true",
                           help="include the adapter class and module")

    thrash = sub.add_parser("thrash", help="Fig. 2 replacement histograms")
    thrash.add_argument("--scale", type=float, default=0.3)
    thrash.add_argument("--model", default="rgcn")
    thrash.add_argument("--dataset", default="dblp")
    thrash.add_argument("--seed", type=int, default=1)
    thrash.add_argument("--gdr", action="store_true",
                        help="profile the restructured execution instead")

    restructure = sub.add_parser(
        "restructure", help="restructure one dataset's semantic graphs"
    )
    restructure.add_argument("--dataset", default="imdb")
    restructure.add_argument("--scale", type=float, default=0.3)
    restructure.add_argument("--seed", type=int, default=1)
    restructure.add_argument("--depth", type=int, default=0)

    datasets = sub.add_parser("datasets", help="Table 2 statistics")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=1)

    sub.add_parser("area", help="Fig. 10 area/power breakdown")
    return parser


def _cmd_evaluate(args) -> int:
    from repro.analysis.experiments import (
        PLATFORMS,
        EvaluationConfig,
        EvaluationSuite,
    )
    from repro.analysis.report import ascii_table
    from repro.platforms import ArtifactStore

    try:
        config = EvaluationConfig(
            datasets=tuple(args.datasets.split(",")),
            models=tuple(args.models.split(",")),
            seed=args.seed,
            scale=args.scale,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    platforms = (
        tuple(args.platforms.split(",")) if args.platforms else PLATFORMS
    )
    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    suite = EvaluationSuite(config, store=store, jobs=args.jobs)
    try:
        suite.run_grid(platforms)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for title, table, fmt in (
        ("Fig. 7: speedup over T4", suite.figure7(platforms), "{:.2f}"),
        ("Fig. 8: DRAM accesses vs T4", suite.figure8(platforms), "{:.4f}"),
        ("Fig. 9: bandwidth utilization", suite.figure9(platforms), "{:.3f}"),
    ):
        rows = []
        for model in list(config.models) + ["GEOMEAN"]:
            datasets = config.datasets if model != "GEOMEAN" else ("all",)
            for dataset in datasets:
                cell = table[model][dataset]
                rows.append([model, dataset]
                            + [fmt.format(cell[p]) for p in platforms])
        print(ascii_table(["model", "dataset"] + list(platforms), rows,
                          title="\n" + title))
    if store is not None:
        print(f"\nartifact store: {store.root} "
              f"({store.stats.hits} hits, {store.stats.misses} misses)")
    return 0


def _cmd_platforms(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.platforms import get_platform_class, platform_names

    rows = []
    for name in platform_names():
        cls = get_platform_class(name)
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        row = [name, doc]
        if args.verbose:
            row.append(f"{cls.__module__}.{cls.__qualname__}")
        rows.append(row)
    headers = ["platform", "description"]
    if args.verbose:
        headers.append("adapter")
    print(ascii_table(headers, rows, title="Registered platforms"))
    return 0


def _cmd_thrash(args) -> int:
    from repro.analysis.experiments import EvaluationConfig
    from repro.analysis.report import render_histogram
    from repro.analysis.thrashing import thrashing_analysis
    from repro.restructure.restructure import GraphRestructurer

    try:
        config = EvaluationConfig(
            datasets=(args.dataset,),
            models=(args.model,),
            seed=args.seed,
            scale=args.scale,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.graph.datasets import load_dataset

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    restructurer = (
        GraphRestructurer(validate=False) if args.gdr else None
    )
    # Same accelerator/model configuration as EvaluationSuite.figure2,
    # routed through the "hihgnn" platform registry entry.
    profile = thrashing_analysis(
        graph,
        args.model,
        config=config.accelerator,
        model_config=config.model_config,
        restructurer=restructurer,
    )
    label = "with GDR-HGNN" if args.gdr else "HiHGNN baseline"
    print(f"{args.dataset} / {args.model} ({label})")
    print(f"NA hit ratio      : {profile.na_hit_ratio:.1%}")
    print(f"redundant fetches : {profile.redundant_accesses}")
    print("replacement-times histogram (ratio of #vertex):")
    print(render_histogram(profile.histogram, series="vertex_ratio"))
    return 0


def _cmd_restructure(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.graph.datasets import load_dataset
    from repro.graph.semantic import build_semantic_graphs
    from repro.restructure.restructure import GraphRestructurer

    graph = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    restructurer = GraphRestructurer(max_depth=args.depth, validate=False)
    rows = []
    for sg in build_semantic_graphs(graph):
        result = restructurer.restructure(sg)
        rows.append([
            str(sg.relation), sg.num_edges, result.matching.size,
            result.backbone_size,
            "/".join(str(sub.num_edges) for sub in result.subgraphs),
            len(result.leaves()),
        ])
    print(ascii_table(
        ["relation", "edges", "matching", "backbone",
         "subgraph edges", "leaves"],
        rows, title=f"Restructuring {graph.name}",
    ))
    return 0


def _cmd_datasets(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.graph.datasets import DATASET_SPECS, load_dataset

    rows = []
    for name in sorted(DATASET_SPECS):
        graph = load_dataset(name, seed=args.seed, scale=args.scale)
        for vtype in graph.vertex_types:
            rows.append([name, vtype, graph.num_vertices(vtype),
                         graph.feature_dim(vtype) or "-"])
        rows.append([name, "(edges)", graph.num_edges(), "-"])
    print(ascii_table(["dataset", "vertex type", "count", "feat dim"],
                      rows, title="Table 2: dataset statistics"))
    return 0


def _cmd_area(_args) -> int:
    from repro.analysis.report import ascii_table
    from repro.energy.breakdown import area_breakdown, figure10_shares

    components = area_breakdown()
    rows = [[c.block, c.component, f"{c.area_mm2:.3f}", f"{c.power_mw:.1f}"]
            for c in components]
    print(ascii_table(["block", "component", "area mm^2", "power mW"],
                      rows, title="Fig. 10: area and power (TSMC 12 nm)"))
    shares = figure10_shares()
    print(f"\nGDR-HGNN: {shares['gdr_area_share']:.2%} of area, "
          f"{shares['gdr_power_share']:.2%} of power "
          "(paper: 2.30% / 0.46%)")
    return 0


_COMMANDS = {
    "evaluate": _cmd_evaluate,
    "platforms": _cmd_platforms,
    "thrash": _cmd_thrash,
    "restructure": _cmd_restructure,
    "datasets": _cmd_datasets,
    "area": _cmd_area,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
