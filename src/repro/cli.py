"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``evaluate``  -- run the §5 evaluation grid and print Figures 7/8/9.
  ``--keep-going`` isolates per-cell failures (exit 1 if any cell
  ultimately fails), ``--max-retries`` retries transient errors with
  deterministic backoff, ``--store-stats`` appends live store counters.
- ``store``     -- inspect/maintain the artifact store
  (``stats`` / ``verify`` / ``gc``).
- ``platforms`` -- list the registered execution platforms.
- ``scenarios`` -- list/describe the scenario catalog (parameterized
  workload families usable wherever a dataset name is accepted).
- ``thrash``    -- print Fig. 2 style replacement histograms.
- ``restructure`` -- restructure one dataset's semantic graphs and
  print backbone/subgraph statistics.
- ``datasets``  -- print Table 2 style dataset statistics.
- ``area``      -- print the Fig. 10 area/power breakdown.
- ``serve``     -- run the simulation service: an asyncio HTTP server
  streaming grid-cell results as NDJSON, with in-flight dedupe across
  concurrent clients and graceful drain on SIGTERM (see the README's
  "Simulation service" section).

Every command accepts ``--format {table,json}``. JSON output is the
``to_dict()`` form of the typed result objects in
:mod:`repro.api.results` (schema-versioned, deterministic key order),
so other programs can consume exactly what the library computes.

``evaluate`` is built on :class:`repro.api.session.Session`: it turns
the flags into a declarative :class:`repro.api.spec.ExperimentSpec`,
streams cells over a worker pool (``--platforms``, ``--jobs``) and
persists typed cell results in the on-disk artifact store
(``$REPRO_ARTIFACT_DIR``, disable with ``--no-cache``), so repeated
invocations are warm-cache — a warm ``--format json`` run is
byte-identical to the cold run that filled the store.
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["main", "build_parser"]


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format: human tables or typed-result JSON",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GDR-HGNN (DAC 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    evaluate = sub.add_parser("evaluate", help="run the evaluation grid")
    evaluate.add_argument("--scale", type=float, default=0.3)
    evaluate.add_argument("--models", default="rgcn",
                          help="comma-separated model list")
    evaluate.add_argument("--datasets", default=None,
                          help="comma-separated catalog datasets and/or "
                               "scenario refs (default: acm,imdb,dblp, "
                               "or only --scenario workloads when given)")
    evaluate.add_argument("--scenario", action="append", default=None,
                          metavar="FAMILY[:K=V,...]",
                          help="add one scenario workload to the grid "
                               "(repeatable); see `repro scenarios list`")
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--platforms", default=None,
                          help="comma-separated platform list "
                               "(default: the four paper platforms)")
    evaluate.add_argument("--jobs", default="1", metavar="N|auto",
                          help="grid worker count (1 = serial, "
                               "'auto' = CPU count)")
    evaluate.add_argument("--executor", default="thread",
                          choices=("thread", "process", "auto"),
                          help="fan-out backend: 'thread' shares one "
                               "address space, 'process' runs true "
                               "multicore over shared-memory artifacts, "
                               "'auto' picks process when --jobs > 1 "
                               "and the machine is multicore; results "
                               "are bit-identical either way")
    evaluate.add_argument("--no-cache", action="store_true",
                          help="skip the on-disk artifact store")
    evaluate.add_argument("--cache-dir", default=None,
                          help="artifact store directory "
                               "(default: $REPRO_ARTIFACT_DIR or "
                               "~/.cache/repro/artifacts)")
    evaluate.add_argument("--progress", action="store_true",
                          help="stream per-cell progress to stderr as "
                               "results complete")
    evaluate.add_argument("--keep-going", action="store_true",
                          help="isolate per-cell failures: run every cell "
                               "to a terminal outcome, report the "
                               "casualties and exit 1 instead of aborting "
                               "on the first error")
    evaluate.add_argument("--max-retries", type=int, default=0,
                          metavar="N",
                          help="retry transiently failing cells up to N "
                               "extra times (deterministic backoff; "
                               "validation errors never retry)")
    evaluate.add_argument("--store-stats", action="store_true",
                          help="append live artifact-store counters "
                               "(hits/misses/puts/quarantined/evicted) "
                               "to the output")
    _add_format(evaluate)

    store = sub.add_parser(
        "store", help="inspect and maintain the on-disk artifact store"
    )
    store.add_argument("action", choices=("stats", "verify", "gc"),
                       help="stats: entry/byte counts and health "
                            "counters; verify: integrity-check every "
                            "entry (exit 1 if any is corrupt); gc: sweep "
                            "stale temp files (and, optionally, the "
                            "quarantine)")
    store.add_argument("--cache-dir", default=None,
                       help="artifact store directory "
                            "(default: $REPRO_ARTIFACT_DIR or "
                            "~/.cache/repro/artifacts)")
    store.add_argument("--tmp-max-age", type=float, default=None,
                       metavar="SECONDS",
                       help="gc: remove .tmp files older than this "
                            "(default: 1 hour; 0 sweeps all)")
    store.add_argument("--purge-quarantine", action="store_true",
                       help="gc: also delete quarantined entries")
    _add_format(store)

    scenarios = sub.add_parser(
        "scenarios", help="list/describe the scenario catalog"
    )
    scenarios_sub = scenarios.add_subparsers(dest="action", required=True)
    scenarios_list = scenarios_sub.add_parser(
        "list", help="all registered workload families"
    )
    _add_format(scenarios_list)
    scenarios_describe = scenarios_sub.add_parser(
        "describe", help="parameters of one family or reference"
    )
    scenarios_describe.add_argument(
        "ref", metavar="FAMILY[:K=V,...]",
        help="family name or full scenario reference",
    )
    _add_format(scenarios_describe)

    platforms = sub.add_parser(
        "platforms", help="list registered execution platforms"
    )
    platforms.add_argument("-v", "--verbose", action="store_true",
                           help="include the adapter class and module")
    _add_format(platforms)

    thrash = sub.add_parser("thrash", help="Fig. 2 replacement histograms")
    thrash.add_argument("--scale", type=float, default=0.3)
    thrash.add_argument("--model", default="rgcn")
    thrash.add_argument("--dataset", default="dblp")
    thrash.add_argument("--seed", type=int, default=1)
    thrash.add_argument("--gdr", action="store_true",
                        help="profile the restructured execution instead")
    _add_format(thrash)

    restructure = sub.add_parser(
        "restructure", help="restructure one dataset's semantic graphs"
    )
    restructure.add_argument("--dataset", default="imdb")
    restructure.add_argument("--scale", type=float, default=0.3)
    restructure.add_argument("--seed", type=int, default=1)
    restructure.add_argument("--depth", type=int, default=0)
    _add_format(restructure)

    datasets = sub.add_parser("datasets", help="Table 2 statistics")
    datasets.add_argument("--scale", type=float, default=1.0)
    datasets.add_argument("--seed", type=int, default=1)
    _add_format(datasets)

    area = sub.add_parser("area", help="Fig. 10 area/power breakdown")
    _add_format(area)

    serve = sub.add_parser(
        "serve", help="run the simulation service (NDJSON over HTTP)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = ephemeral; the resolved "
                            "port is printed on startup)")
    serve.add_argument("--jobs", default="auto", metavar="N|auto",
                       help="grid worker count shared by all clients "
                            "(default: CPU count)")
    serve.add_argument("--executor", default="thread",
                       choices=("thread", "process", "auto"),
                       help="fan-out backend (results are bit-identical "
                            "either way)")
    serve.add_argument("--no-cache", action="store_true",
                       help="skip the on-disk artifact store (no warm "
                            "cells across restarts)")
    serve.add_argument("--cache-dir", default=None,
                       help="artifact store directory "
                            "(default: $REPRO_ARTIFACT_DIR or "
                            "~/.cache/repro/artifacts)")
    serve.add_argument("--max-queue", type=int, default=1024,
                       metavar="N",
                       help="per-client budget of undelivered cells "
                            "(fairness guard; over-budget submissions "
                            "get a typed 429)")

    from repro.lint.cli import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="check repo-specific invariants (determinism, fault "
             "sites, lifecycles, parity, picklability)",
    )
    add_lint_arguments(lint)
    return parser


def _emit_json(payload) -> int:
    """Print one deterministic JSON document (typed-result dict form)."""
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_evaluate(args) -> int:
    from repro.api import ExperimentSpec, Session
    from repro.api.results import (
        BandwidthReport,
        DramTrafficReport,
        SpeedupReport,
    )
    from repro.analysis.report import ascii_table
    from repro.platforms import ArtifactStore, RetryPolicy

    if args.max_retries < 0:
        print("error: --max-retries must be >= 0", file=sys.stderr)
        return 2
    from repro.platforms.runner import resolve_jobs

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError:
        print(
            f"error: --jobs must be an integer or 'auto', got {args.jobs!r}",
            file=sys.stderr,
        )
        return 2
    requested = (
        tuple(args.platforms.split(","))
        if args.platforms
        else ExperimentSpec().platforms
    )
    # --datasets splits on commas, so scenario refs with parameters go
    # through the repeatable --scenario flag; with only --scenario
    # given the catalog default drops out and the grid is pure sweep.
    datasets: tuple[str, ...] = ()
    if args.datasets is not None:
        datasets = tuple(args.datasets.split(","))
    elif not args.scenario:
        datasets = ("acm", "imdb", "dblp")
    if args.scenario:
        datasets = datasets + tuple(args.scenario)
    try:
        spec = ExperimentSpec(
            platforms=requested,
            datasets=datasets,
            models=tuple(args.models.split(",")),
            seed=args.seed,
            scale=args.scale,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    session = Session(
        spec, store=store, jobs=jobs, executor=args.executor
    )

    progress = None
    if args.progress:
        def progress(done, total, cell):
            print(
                f"[{done}/{total}] {cell.platform} x {cell.model} x "
                f"{cell.dataset}: {cell.time_ms:.3f} ms",
                file=sys.stderr,
            )

    # The paper normalizes to T4 even when plotting a platform subset:
    # run the baseline alongside, but only report requested columns.
    run_spec = spec
    if "t4" not in spec.platforms:
        run_spec = spec.replace(
            platforms=tuple(dict.fromkeys(spec.platforms + ("t4",)))
        )
    retry = (
        RetryPolicy(max_attempts=args.max_retries + 1)
        if args.max_retries
        else None
    )
    on_error = "collect" if args.keep_going else "raise"
    grid_full = session.run(
        run_spec, progress=progress, on_error=on_error, retry=retry
    )
    # Unlink any shared-memory segments the process backend published;
    # everything below is pure report assembly.
    session.close()
    for failed in grid_full.failures:
        failure = failed.failure
        print(
            f"FAILED {failed.platform} x {failed.model} x "
            f"{failed.dataset}: {failure.error_type}: {failure.message} "
            f"(after {failure.attempts} attempt(s))",
            file=sys.stderr,
        )
    exit_code = 0 if grid_full.ok else 1
    grid = (
        grid_full
        if run_spec is spec
        else grid_full.subset(platforms=spec.platforms)
    )
    cells = {cell.key: cell for cell in grid_full.cells}
    try:
        reports = {
            cls.kind: cls.from_cells(
                cells,
                models=spec.models,
                datasets=spec.datasets,
                platforms=spec.platforms,
                baseline=baseline,
                # A fully healthy grid takes the strict path; with
                # --keep-going casualties the tables degrade over the
                # surviving cells instead.
                skip_missing=not grid_full.ok,
            )
            for cls, baseline in (
                (SpeedupReport, "t4"),
                (DramTrafficReport, "t4"),
                (BandwidthReport, None),
            )
        }
    except ValueError as exc:
        # Every cell failed: there is nothing left to tabulate.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    store_stats = session.store_stats() if args.store_stats else None

    if args.format == "json":
        # Without --store-stats the document is a pure function of the
        # spec, so warm reruns are byte-identical to cold ones.
        payload = {
            "grid": grid.to_dict(),
            "reports": {
                kind: report.to_dict()
                for kind, report in reports.items()
            },
        }
        if store_stats is not None:
            payload["store_stats"] = store_stats
        _emit_json(payload)
        return exit_code

    for title, report, fmt in (
        ("Fig. 7: speedup over T4", reports["speedup"], "{:.2f}"),
        ("Fig. 8: DRAM accesses vs T4", reports["dram_accesses"], "{:.4f}"),
        ("Fig. 9: bandwidth utilization",
         reports["bandwidth_utilization"], "{:.3f}"),
    ):
        rows = []
        for model in list(spec.models) + ["GEOMEAN"]:
            datasets = spec.datasets if model != "GEOMEAN" else ("all",)
            for dataset in datasets:
                # Degraded tables render "-" for failed/missing values.
                cell = (
                    report["GEOMEAN"]["all"]
                    if model == "GEOMEAN"
                    else report[model].get(dataset, {})
                )
                rows.append(
                    [model, dataset]
                    + [
                        fmt.format(cell[p]) if p in cell else "-"
                        for p in spec.platforms
                    ]
                )
        print(ascii_table(["model", "dataset"] + list(spec.platforms), rows,
                          title="\n" + title))
    if store is not None:
        print(f"\nartifact store: {store.root} "
              f"({store.stats.hits} hits, {store.stats.misses} misses)")
    if store_stats is not None:
        counters = ", ".join(f"{k}={v}" for k, v in store_stats.items())
        print(f"store counters: {counters}")
    return exit_code


def _cmd_store(args) -> int:
    from repro.platforms import ArtifactStore

    store = ArtifactStore(args.cache_dir)
    if args.action == "stats":
        payload = store.disk_stats()
        if args.format == "json":
            return _emit_json(payload)
        print(f"artifact store: {payload['root']}")
        print(f"entries     : {payload['entries']}")
        print(f"bytes       : {payload['bytes']}")
        print(f"tmp files   : {payload['tmp_files']}")
        print(f"quarantined : {payload['quarantined']}")
        return 0
    if args.action == "verify":
        report = store.verify()
        if args.format == "json":
            _emit_json(report)
        else:
            print(f"checked {report['checked']} entries: "
                  f"{report['ok']} ok, {report['quarantined']} quarantined, "
                  f"{report['evicted']} evicted")
        return 1 if report["quarantined"] else 0
    kwargs = {"purge_quarantine": args.purge_quarantine}
    if args.tmp_max_age is not None:
        if args.tmp_max_age < 0:
            print("error: --tmp-max-age must be >= 0", file=sys.stderr)
            return 2
        kwargs["tmp_max_age_s"] = args.tmp_max_age
    report = store.gc(**kwargs)
    if args.format == "json":
        return _emit_json(report)
    print(f"removed {report['tmp_removed']} stale temp file(s), "
          f"{report['quarantine_removed']} quarantined entries")
    return 0


def _cmd_scenarios(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.scenarios import describe_scenario, scenario_names

    if args.action == "list":
        entries = [describe_scenario(name) for name in scenario_names()]
        if args.format == "json":
            return _emit_json({"scenarios": entries})
        rows = [
            [
                entry["family"],
                ", ".join(
                    f"{p['name']}={p['default']}" for p in entry["params"]
                ),
                entry["doc"],
            ]
            for entry in entries
        ]
        print(ascii_table(
            ["family", "parameters (defaults)", "description"], rows,
            title="Scenario catalog",
        ))
        return 0

    try:
        entry = describe_scenario(args.ref)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        return _emit_json(entry)
    print(f"{entry['family']}: {entry['doc']}")
    print(f"canonical: {entry['canonical']}")
    print(ascii_table(
        ["parameter", "default", "value", "description"],
        [
            [p["name"], p["default"], p["value"], p["doc"]]
            for p in entry["params"]
        ],
        title="Parameters",
    ))
    return 0


def _cmd_platforms(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.platforms import get_platform_class, platform_names

    entries = []
    for name in platform_names():
        cls = get_platform_class(name)
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        entries.append(
            {
                "name": name,
                "description": doc,
                "adapter": f"{cls.__module__}.{cls.__qualname__}",
            }
        )
    if args.format == "json":
        return _emit_json({"platforms": entries})
    rows = []
    for entry in entries:
        row = [entry["name"], entry["description"]]
        if args.verbose:
            row.append(entry["adapter"])
        rows.append(row)
    headers = ["platform", "description"]
    if args.verbose:
        headers.append("adapter")
    print(ascii_table(headers, rows, title="Registered platforms"))
    return 0


def _cmd_thrash(args) -> int:
    from repro.analysis.report import render_histogram
    from repro.analysis.thrashing import thrashing_analysis
    from repro.api import ExperimentSpec
    from repro.scenarios import load_workload
    from repro.restructure.restructure import GraphRestructurer

    try:
        spec = ExperimentSpec(
            platforms=("hihgnn",),
            datasets=(args.dataset,),
            models=(args.model,),
            seed=args.seed,
            scale=args.scale,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        graph = load_workload(args.dataset, seed=args.seed, scale=args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    restructurer = (
        GraphRestructurer(validate=False) if args.gdr else None
    )
    # Same accelerator/model configuration as EvaluationSuite.figure2,
    # routed through the "hihgnn" platform registry entry.
    profile = thrashing_analysis(
        graph,
        args.model,
        config=spec.accelerator,
        model_config=spec.model_config,
        restructurer=restructurer,
    )
    if args.format == "json":
        return _emit_json(
            profile.as_report(restructured=args.gdr).to_dict()
        )
    label = "with GDR-HGNN" if args.gdr else "HiHGNN baseline"
    print(f"{args.dataset} / {args.model} ({label})")
    print(f"NA hit ratio      : {profile.na_hit_ratio:.1%}")
    print(f"redundant fetches : {profile.redundant_accesses}")
    print("replacement-times histogram (ratio of #vertex):")
    print(render_histogram(profile.histogram, series="vertex_ratio"))
    return 0


def _cmd_restructure(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.api.results import RestructureRelationRow, RestructureReport
    from repro.scenarios import load_workload
    from repro.graph.semantic import build_semantic_graphs
    from repro.restructure.restructure import GraphRestructurer

    try:
        graph = load_workload(args.dataset, seed=args.seed, scale=args.scale)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    restructurer = GraphRestructurer(max_depth=args.depth, validate=False)
    rows = []
    for sg in build_semantic_graphs(graph):
        result = restructurer.restructure(sg)
        rows.append(
            RestructureRelationRow(
                relation=str(sg.relation),
                edges=int(sg.num_edges),
                matching=int(result.matching.size),
                backbone=int(result.backbone_size),
                subgraph_edges=tuple(
                    int(sub.num_edges) for sub in result.subgraphs
                ),
                leaves=len(result.leaves()),
            )
        )
    report = RestructureReport(dataset=graph.name, rows=tuple(rows))
    if args.format == "json":
        return _emit_json(report.to_dict())
    print(ascii_table(
        ["relation", "edges", "matching", "backbone",
         "subgraph edges", "leaves"],
        [
            [row.relation, row.edges, row.matching, row.backbone,
             "/".join(str(e) for e in row.subgraph_edges), row.leaves]
            for row in report.rows
        ],
        title=f"Restructuring {graph.name}",
    ))
    return 0


def _cmd_datasets(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.api.results import DatasetStatRow, DatasetStatsReport
    from repro.graph.datasets import DATASET_SPECS, load_dataset

    rows = []
    edges = {}
    for name in sorted(DATASET_SPECS):
        graph = load_dataset(name, seed=args.seed, scale=args.scale)
        for vtype in graph.vertex_types:
            rows.append(
                DatasetStatRow(
                    dataset=name,
                    vertex_type=vtype,
                    vertices=graph.num_vertices(vtype),
                    # 0 = featureless type (real information, kept in
                    # JSON); the table renderer shows it as "-".
                    feature_dim=graph.feature_dim(vtype),
                )
            )
        edges[name] = graph.num_edges()
    report = DatasetStatsReport(rows=tuple(rows), edges=edges)
    if args.format == "json":
        return _emit_json(report.to_dict())
    table_rows = []
    for name in sorted(edges):
        for row in report:
            if row.dataset == name:
                table_rows.append([row.dataset, row.vertex_type,
                                   row.vertices, row.feature_dim or "-"])
        table_rows.append([name, "(edges)", edges[name], "-"])
    print(ascii_table(["dataset", "vertex type", "count", "feat dim"],
                      table_rows, title="Table 2: dataset statistics"))
    return 0


def _cmd_area(args) -> int:
    from repro.analysis.report import ascii_table
    from repro.api.results import AreaReport

    report = AreaReport.from_breakdown()
    if args.format == "json":
        return _emit_json(report.to_dict())
    rows = [[c.block, c.component, f"{c.area_mm2:.3f}", f"{c.power_mw:.1f}"]
            for c in report.components]
    print(ascii_table(["block", "component", "area mm^2", "power mW"],
                      rows, title="Fig. 10: area and power (TSMC 12 nm)"))
    shares = report.shares
    print(f"\nGDR-HGNN: {shares['gdr_area_share']:.2%} of area, "
          f"{shares['gdr_power_share']:.2%} of power "
          "(paper: 2.30% / 0.46%)")
    return 0


def _cmd_serve(args) -> int:
    import asyncio

    from repro.api import Session
    from repro.platforms import ArtifactStore
    from repro.platforms.runner import resolve_jobs
    from repro.service import ReproServer, SimulationService

    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError:
        print(
            f"error: --jobs must be an integer or 'auto', got {args.jobs!r}",
            file=sys.stderr,
        )
        return 2
    if args.max_queue < 1:
        print("error: --max-queue must be >= 1", file=sys.stderr)
        return 2
    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    session = Session(store=store, jobs=jobs, executor=args.executor)
    service = SimulationService(
        session, max_queue_per_client=args.max_queue
    )
    server = ReproServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        import threading

        ready = threading.Event()
        task = asyncio.ensure_future(server.serve(ready=ready))
        while not ready.is_set():
            await asyncio.sleep(0.01)
        print(
            f"repro service listening on http://{server.host}:{server.port} "
            f"(jobs={jobs}, executor={args.executor}, "
            f"store={'off' if store is None else store.root}) "
            "-- SIGTERM drains gracefully",
            file=sys.stderr,
        )
        await task

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


_COMMANDS = {
    "evaluate": _cmd_evaluate,
    "store": _cmd_store,
    "lint": _cmd_lint,
    "scenarios": _cmd_scenarios,
    "platforms": _cmd_platforms,
    "thrash": _cmd_thrash,
    "restructure": _cmd_restructure,
    "datasets": _cmd_datasets,
    "area": _cmd_area,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
