"""DGL-on-GPU performance simulator."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.config import GPUConfig, T4
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs
from repro.memory.buffer import BufferStats, FeatureBuffer
from repro.memory.dram import DRAMStats
from repro.models.base import ModelConfig
from repro.models.workload import get_model

__all__ = ["GPUReport", "GPUSimulator"]

# GPUs issue DRAM requests at cache-line granularity (128 B on
# Turing/Ampere); the accelerator issues whole-feature bursts. "Number
# of DRAM accesses" (Fig. 8) counts requests, so the two platforms
# legitimately differ in requests-per-byte.
_LINE_BYTES = 128


@dataclass
class GPUReport:
    """One GPU inference run, in the same vocabulary as the accelerator."""

    platform: str
    model: str
    dataset: str
    time_ms: float
    dram: DRAMStats
    l2: BufferStats
    na_l2_hit_ratio: float
    kernel_launches: int
    stage_time_ms: dict[str, float] = field(default_factory=dict)
    na_replacement_histogram: dict[int, dict[str, float]] = field(default_factory=dict)

    @property
    def dram_bytes(self) -> int:
        return self.dram.total_bytes

    @property
    def dram_accesses(self) -> int:
        return self.dram.accesses

    _bw_util: float = 0.0

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of peak DRAM bandwidth over the run."""
        return self._bw_util

    def speedup_over(self, other) -> float:
        if self.time_ms <= 0:
            return float("inf")
        return other.time_ms / self.time_ms


class GPUSimulator:
    """Simulates DGL 1.0.2 executing an HGNN on one GPU.

    Every relation runs sequentially (DGL's per-etype loop); each
    relation-stage pays kernel launches plus framework dispatch; the NA
    gather streams the true edge trace through an L2-sized feature
    cache to obtain the miss traffic that hits DRAM.
    """

    def __init__(
        self,
        config: GPUConfig | None = None,
        model_config: ModelConfig | None = None,
    ) -> None:
        self.config = config or T4
        self.model_config = model_config or ModelConfig()

    # ------------------------------------------------------------------
    # Roofline helpers (seconds)
    # ------------------------------------------------------------------

    def _dense_time(self, flops: int, stream_bytes: int) -> float:
        cfg = self.config
        t_compute = flops / (cfg.peak_flops * cfg.gemm_efficiency)
        t_memory = stream_bytes / (cfg.peak_bytes_per_s * cfg.stream_bw_fraction)
        return max(t_compute, t_memory)

    def _scatter_time(self, flops: int, scatter_bytes: int, stream_bytes: int) -> float:
        cfg = self.config
        t_compute = flops / (cfg.peak_flops * cfg.gemm_efficiency)
        t_scatter = scatter_bytes / (cfg.peak_bytes_per_s * cfg.scatter_bw_fraction)
        t_stream = stream_bytes / (cfg.peak_bytes_per_s * cfg.stream_bw_fraction)
        return max(t_compute, t_scatter + t_stream)

    def _count_bulk(self, dram: DRAMStats, nbytes: int, *, write: bool = False) -> None:
        """Account a transfer in line-granular requests and bytes."""
        if nbytes <= 0:
            return
        chunks = -(-nbytes // _LINE_BYTES)
        if write:
            dram.writes += chunks
            dram.bytes_written += nbytes
        else:
            dram.reads += chunks
            dram.bytes_read += nbytes

    # ------------------------------------------------------------------
    # Main entry
    # ------------------------------------------------------------------

    def run(
        self,
        graph: HeteroGraph,
        model_name: str,
        *,
        semantic_graphs: list[SemanticGraph] | None = None,
    ) -> GPUReport:
        """Simulate one inference pass of ``model_name`` on ``graph``."""
        cfg = self.config
        model = get_model(model_name, self.model_config)
        mc = model.config
        fvb = mc.feature_vector_bytes
        fb = mc.feature_bytes

        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)

        dram = DRAMStats()
        l2_capacity = int(cfg.l2_bytes * cfg.l2_feature_fraction)
        l2 = FeatureBuffer(l2_capacity, fvb, name=f"{cfg.name}-l2")

        launches = 0
        seconds = cfg.fixed_overhead_ms / 1e3
        stage_time = {"ip": 0.0, "fp": 0.0, "na": 0.0, "sf": 0.0, "overhead": 0.0}
        stage_time["overhead"] += cfg.fixed_overhead_ms / 1e3

        # Input projection: one GEMM per vertex type.
        for vtype in graph.vertex_types:
            n = graph.num_vertices(vtype)
            raw = graph.feature_dim(vtype) or mc.embed_dim
            flops = n * model.input_proj_flops_per_vertex(raw)
            stream = n * raw * fb + raw * mc.embed_dim * fb + n * mc.embed_dim * fb
            t = self._dense_time(flops, stream) + cfg.kernel_launch_us / 1e6
            seconds += t
            stage_time["ip"] += t
            launches += 1
            self._count_bulk(dram, n * raw * fb + raw * mc.embed_dim * fb)
            self._count_bulk(dram, n * mc.embed_dim * fb, write=True)

        for sg in semantic_graphs:
            active_src = len(sg.active_src())
            active_dst = len(sg.active_dst())
            sides = 2 if model.projects_destinations else 1

            # FP: per-relation projections (1-2 GEMM kernels).
            fp_flops = (active_src + (active_dst if sides == 2 else 0)) * (
                model.fp_flops_per_vertex()
            )
            fp_stream = (
                (active_src + (active_dst if sides == 2 else 0))
                * (mc.embed_dim * fb + fvb)
                + sides * mc.embed_dim * mc.hidden_dim * fb
            )
            t_fp = self._dense_time(fp_flops, fp_stream)
            t_fp += sides * cfg.kernel_launch_us / 1e6
            t_fp += cfg.dispatch_us_per_stage / 1e6
            launches += sides
            seconds += t_fp
            stage_time["fp"] += t_fp
            self._count_bulk(dram, fp_stream - active_src * fvb)
            self._count_bulk(dram, active_src * fvb, write=True)

            # NA: gather src features per edge through L2. Misses reach
            # DRAM as line-granular requests. The trace and its replay
            # artifact are cached on the semantic graph and shared with
            # the accelerator simulations of the same dataset.
            misses = l2.access_many(sg.na_trace(), artifact=sg.na_replay())
            scatter_bytes = misses * fvb
            dram.reads += misses * max(1, fvb // _LINE_BYTES)
            dram.bytes_read += misses * fvb
            stream_bytes = active_dst * fvb  # write aggregated outputs
            if model.projects_destinations:
                stream_bytes += active_dst * fvb
            # DGL's NA is 3-4 kernels: gather/SDDMM, softmax, SpMM(+norm)
            na_kernels = 4 if model.projects_destinations else 2
            # Each kernel re-reads the COO/CSR index arrays, and
            # apply_edges materializes per-edge intermediates (scores
            # for attention models, degree norms for RGCN) that are
            # written once and read back by the following kernels.
            index_bytes = sg.num_edges * 16 * na_kernels
            if model.projects_destinations:
                edge_tmp = sg.num_edges * mc.num_heads * fb
            else:
                edge_tmp = sg.num_edges * fb
            stream_bytes += index_bytes + 2 * edge_tmp
            self._count_bulk(dram, index_bytes + edge_tmp)
            self._count_bulk(dram, edge_tmp + active_dst * fvb, write=True)
            if model.projects_destinations:
                self._count_bulk(dram, active_dst * fvb, write=True)
            na_flops = sg.num_edges * model.na_flops_per_edge()
            t_na = self._scatter_time(na_flops, scatter_bytes, stream_bytes)
            t_na += na_kernels * cfg.kernel_launch_us / 1e6
            t_na += cfg.dispatch_us_per_stage / 1e6
            launches += na_kernels
            seconds += t_na
            stage_time["na"] += t_na

        # SF: per destination type, element-wise fusion kernels.
        for vtype in graph.vertex_types:
            relations_in = [
                r for r in graph.relations if r.dst_type == vtype
            ]
            if not relations_in:
                continue
            n = graph.num_vertices(vtype)
            flops = n * model.sf_flops_per_vertex(len(relations_in))
            stream = (len(relations_in) + 1) * n * fvb
            t_sf = self._dense_time(flops, stream)
            t_sf += cfg.kernel_launch_us / 1e6 + cfg.dispatch_us_per_stage / 1e6
            launches += 1
            seconds += t_sf
            stage_time["sf"] += t_sf
            self._count_bulk(dram, len(relations_in) * n * fvb)
            self._count_bulk(dram, n * fvb, write=True)

        na_accesses = l2.stats.hits + l2.stats.misses
        na_hit_ratio = l2.stats.hits / na_accesses if na_accesses else 0.0

        report = GPUReport(
            platform=cfg.name,
            model=model.name,
            dataset=graph.name,
            time_ms=seconds * 1e3,
            dram=dram,
            l2=l2.stats,
            na_l2_hit_ratio=na_hit_ratio,
            kernel_launches=launches,
            stage_time_ms={k: v * 1e3 for k, v in stage_time.items()},
            na_replacement_histogram=l2.replacement_histogram(),
        )
        report._bw_util = (
            min(1.0, dram.total_bytes / (cfg.peak_bytes_per_s * seconds))
            if seconds > 0
            else 0.0
        )
        return report
