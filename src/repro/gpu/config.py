"""GPU platform parameters (public spec sheets + calibrated derates)."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUConfig", "T4", "A100"]

MB = 1 << 20


@dataclass(frozen=True)
class GPUConfig:
    """Roofline parameters of one GPU.

    Hardware numbers come from the public datasheets; the efficiency
    fractions are the calibrated derates of DGL 1.0.2 kernels:

    Attributes:
        name: platform label.
        fp32_tflops: peak fp32 throughput.
        mem_bw_gbps: peak DRAM bandwidth (GB/s).
        l2_bytes: L2 cache capacity.
        l2_feature_fraction: share of L2 effectively available to
            vertex features during NA (the rest holds indices, partial
            outputs and other tensors).
        gemm_efficiency: achieved fraction of peak FLOPs in dense
            projection kernels.
        stream_bw_fraction: achieved fraction of peak bandwidth for
            sequential streams.
        scatter_bw_fraction: achieved fraction of peak bandwidth for
            the NA gather's scattered reads (cache-miss, TLB and
            sectoring penalties).
        kernel_launch_us: per-kernel launch latency.
        dispatch_us_per_stage: DGL framework overhead per
            relation-stage (Python dispatch, format checks, stream
            syncs) -- the dominant cost on small heterogeneous graphs.
        fixed_overhead_ms: per-inference overhead (graph preparation,
            type grouping, initial transfers).
    """

    name: str
    fp32_tflops: float
    mem_bw_gbps: float
    l2_bytes: int
    l2_feature_fraction: float = 0.5
    gemm_efficiency: float = 0.55
    stream_bw_fraction: float = 0.75
    scatter_bw_fraction: float = 0.04
    kernel_launch_us: float = 4.0
    dispatch_us_per_stage: float = 500.0
    fixed_overhead_ms: float = 2.0

    def __post_init__(self) -> None:
        if self.fp32_tflops <= 0 or self.mem_bw_gbps <= 0 or self.l2_bytes <= 0:
            raise ValueError("hardware parameters must be positive")
        for frac in (
            self.l2_feature_fraction,
            self.gemm_efficiency,
            self.stream_bw_fraction,
            self.scatter_bw_fraction,
        ):
            if not 0.0 < frac <= 1.0:
                raise ValueError("efficiency fractions must be in (0, 1]")

    @property
    def peak_flops(self) -> float:
        return self.fp32_tflops * 1e12

    @property
    def peak_bytes_per_s(self) -> float:
        return self.mem_bw_gbps * 1e9


T4 = GPUConfig(
    name="t4",
    fp32_tflops=8.1,
    mem_bw_gbps=320.0,
    l2_bytes=4 * MB,
    scatter_bw_fraction=0.025,
    gemm_efficiency=0.50,
    kernel_launch_us=5.0,
    dispatch_us_per_stage=900.0,
    fixed_overhead_ms=3.0,
)

A100 = GPUConfig(
    name="a100",
    fp32_tflops=19.5,
    mem_bw_gbps=1555.0,
    l2_bytes=40 * MB,
    scatter_bw_fraction=0.06,
    gemm_efficiency=0.60,
    kernel_launch_us=4.0,
    dispatch_us_per_stage=280.0,
    fixed_overhead_ms=1.5,
)
