"""GPU performance models (DGL on T4 / A100).

The paper's software baseline is DGL 1.0.2 running the same three
models on an NVIDIA T4 and an NVIDIA A100. Neither GPU is available
here, so :class:`~repro.gpu.gpumodel.GPUSimulator` reproduces their
behaviour with a roofline-plus-cache model:

- dense kernels (input projection, per-relation FP) run at a calibrated
  fraction of peak FLOPs or memory bandwidth, whichever binds;
- the NA stage's gather replays the *real* per-edge feature access
  trace through an L2 model of the chip's geometry, so the L2 hit
  ratios the paper measures in §3 (30.1 % on IMDB, 17.5 % on DBLP for
  T4/RGCN) are simulated, not assumed;
- scattered reads achieve a small calibrated fraction of peak DRAM
  bandwidth (the irregular-access penalty GPUs suffer on graphs);
- every relation-stage pays DGL's kernel-launch and framework dispatch
  overhead, which dominates end-to-end time on these small
  heterogeneous graphs -- the well-known reason HGNN accelerators beat
  GPUs by such wide margins.
"""

from repro.gpu.config import GPUConfig, T4, A100
from repro.gpu.gpumodel import GPUReport, GPUSimulator

__all__ = ["GPUConfig", "T4", "A100", "GPUReport", "GPUSimulator"]
