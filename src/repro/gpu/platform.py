"""GPU platform adapters: T4 and A100 as registry entries.

A GPU variant (different card, scaled bandwidth, ...) is one subclass
with a ``gpu_config`` and one ``@register_platform`` decorator::

    @register_platform("a100-2x-bw")
    class DoubledBandwidthA100(GPUPlatform):
        gpu_config = dataclasses.replace(A100, mem_bw_gbps=3110.0)
"""

from __future__ import annotations

from typing import ClassVar

from repro.gpu.config import A100, T4, GPUConfig
from repro.gpu.gpumodel import GPUReport, GPUSimulator
from repro.platforms.base import DatasetArtifacts, Platform
from repro.platforms.registry import register_platform

__all__ = ["GPUPlatform", "T4Platform", "A100Platform"]


class GPUPlatform(Platform):
    """DGL-on-GPU roofline simulation of one card."""

    gpu_config: ClassVar[GPUConfig]

    def simulate(
        self, model_name: str, artifacts: DatasetArtifacts, **kwargs
    ) -> GPUReport:
        simulator = GPUSimulator(self.gpu_config, self.context.model_config)
        report = simulator.run(
            artifacts.graph,
            model_name,
            semantic_graphs=artifacts.semantic_graphs,
            **kwargs,
        )
        return self._labelled(report)

    def digest_sources(self) -> tuple:
        return (self.gpu_config, self.context.model_config)


@register_platform("t4")
class T4Platform(GPUPlatform):
    """NVIDIA T4 running DGL (the paper's normalization baseline)."""

    gpu_config = T4


@register_platform("a100")
class A100Platform(GPUPlatform):
    """NVIDIA A100 running DGL."""

    gpu_config = A100
