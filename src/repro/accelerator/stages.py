"""Stage execution engines (FP / NA / SF) of the accelerator model.

Each engine turns one semantic graph into a :class:`StageReport`:
compute cycles from the datapath models, memory cycles and traffic from
the HBM model, with the NA stage additionally streaming its feature
accesses through the on-chip :class:`~repro.memory.buffer.FeatureBuffer`
so that thrashing is *measured*.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.accelerator.config import HiHGNNConfig
from repro.accelerator.simd import SIMDUnit
from repro.accelerator.systolic import SystolicArray
from repro.graph.csr import CSR, gather_rows
from repro.graph.semantic import SemanticGraph
from repro.memory.buffer import FeatureBuffer
from repro.memory.dram import HBMModel
from repro.models.base import HGNNModel

__all__ = [
    "StageReport",
    "gather_in_neighbors",
    "InputProjectionEngine",
    "FPStageEngine",
    "NAStageEngine",
    "SFStageEngine",
]


@dataclass
class StageReport:
    """Timing and traffic of one stage invocation."""

    name: str
    compute_cycles: int = 0
    memory_cycles: int = 0
    dram_bytes_read: int = 0
    dram_bytes_written: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0

    @property
    def elapsed_cycles(self) -> int:
        """Stage latency: compute and memory overlap via double buffering."""
        return max(self.compute_cycles, self.memory_cycles)

    def merge(self, other: "StageReport") -> None:
        """Accumulate another invocation of the same stage."""
        self.compute_cycles += other.compute_cycles
        self.memory_cycles += other.memory_cycles
        self.dram_bytes_read += other.dram_bytes_read
        self.dram_bytes_written += other.dram_bytes_written
        self.buffer_hits += other.buffer_hits
        self.buffer_misses += other.buffer_misses


def gather_in_neighbors(csc: CSR, schedule: np.ndarray) -> np.ndarray:
    """Concatenate in-neighbor lists following a destination schedule.

    Vectorized equivalent of
    ``np.concatenate([csc.neighbors(v) for v in schedule])`` -- this is
    the NA stage's source-feature access trace. Thin alias of
    :func:`repro.graph.csr.gather_rows`, kept for its historical name.
    """
    return gather_rows(csc, schedule)


class FPStageEngine:
    """Feature projection: dense GEMMs on the systolic array.

    Raw features stream from DRAM; weights stream once per semantic
    graph; projected features are written back to DRAM, to be consumed
    by NA through the feature buffer. Similarity scheduling discounts
    the raw-feature reads of vertices shared with the previously
    executed graph of the same source type (HiHGNN's reuse mechanism),
    bounded by the FP buffer capacity.
    """

    def __init__(self, config: HiHGNNConfig, model: HGNNModel, hbm: HBMModel) -> None:
        self.config = config
        self.model = model
        self.hbm = hbm
        self.array = SystolicArray(config.systolic_rows, config.systolic_cols)

    def run(
        self,
        graph: SemanticGraph,
        previous: SemanticGraph | None = None,
    ) -> StageReport:
        cfg = self.model.config
        report = StageReport(name="fp")
        hidden = cfg.hidden_dim
        fb = cfg.feature_bytes

        # Per-relation FP consumes the embedded (embed_dim) features
        # produced by the once-per-type input projection.
        sides: list[tuple[np.ndarray, int, int]] = [
            (graph.active_src(), cfg.embed_dim, graph.src_global_base),
        ]
        if self.model.projects_destinations:
            sides.append(
                (graph.active_dst(), cfg.embed_dim, graph.dst_global_base)
            )

        reused = np.empty(0, dtype=np.int64)
        if previous is not None and (
            previous.relation.src_type == graph.relation.src_type
        ):
            reused = np.intersect1d(
                previous.active_src(), graph.active_src(), assume_unique=True
            )

        for vertices, in_dim, base in sides:
            if not len(vertices):
                continue
            fresh = len(vertices)
            if base == graph.src_global_base and len(reused):
                # Reuse is bounded by what the FP buffer could retain.
                retainable = self.config.lane_fp_buffer_bytes // max(in_dim * fb, 1)
                fresh -= min(len(reused), retainable, fresh)
            read_bytes = fresh * in_dim * fb
            weight_bytes = in_dim * hidden * fb
            out_bytes = len(vertices) * hidden * fb

            report.compute_cycles += self.array.gemm_cycles(
                len(vertices), in_dim, hidden
            )
            report.memory_cycles += self.hbm.access_bulk(
                base * in_dim * fb, max(read_bytes, 1)
            )
            report.memory_cycles += self.hbm.access_bulk(0, weight_bytes)
            report.memory_cycles += self.hbm.access_bulk(
                base * hidden * fb, out_bytes, write=True
            )
            report.dram_bytes_read += read_bytes + weight_bytes
            report.dram_bytes_written += out_bytes

        report.compute_cycles += self.config.kernel_overhead_cycles
        return report


class InputProjectionEngine:
    """Once-per-type raw -> embed projection (HGB input transform).

    Runs before any semantic graph: each vertex type's raw features
    stream from DRAM through the systolic array once, and the embedded
    features are written back for the per-relation FP stages to read.
    """

    def __init__(self, config: HiHGNNConfig, model: HGNNModel, hbm: HBMModel) -> None:
        self.config = config
        self.model = model
        self.hbm = hbm
        self.array = SystolicArray(config.systolic_rows, config.systolic_cols)

    def run(self, num_vertices: int, raw_dim: int, base: int) -> StageReport:
        cfg = self.model.config
        fb = cfg.feature_bytes
        report = StageReport(name="ip")
        if num_vertices == 0:
            return report
        in_bytes = num_vertices * raw_dim * fb
        weight_bytes = raw_dim * cfg.embed_dim * fb
        out_bytes = num_vertices * cfg.embed_dim * fb
        # One type's projection is a single dense GEMM; all lanes'
        # systolic arrays cooperate on it (rows split across lanes,
        # weights broadcast), unlike per-semantic-graph stages where a
        # lane owns a whole graph.
        report.compute_cycles = (
            -(
                -self.array.gemm_cycles(num_vertices, raw_dim, cfg.embed_dim)
                // self.config.num_lanes
            )
            + self.config.kernel_overhead_cycles
        )
        report.memory_cycles += self.hbm.access_bulk(base * raw_dim * fb, in_bytes)
        report.memory_cycles += self.hbm.access_bulk(0, weight_bytes)
        report.memory_cycles += self.hbm.access_bulk(
            base * cfg.embed_dim * fb, out_bytes, write=True
        )
        report.dram_bytes_read = in_bytes + weight_bytes
        report.dram_bytes_written = out_bytes
        return report


class NAStageEngine:
    """Neighbor aggregation: the thrashing-prone stage.

    Walks destinations in schedule order; every in-neighbor's projected
    feature is read through the lane's :class:`FeatureBuffer`. Misses
    become DRAM feature fetches (charged to the HBM model with scatter
    addressing); hits are free. Compute is charged on the SIMD unit.
    """

    def __init__(
        self,
        config: HiHGNNConfig,
        model: HGNNModel,
        hbm: HBMModel,
        feature_buffer: FeatureBuffer,
    ) -> None:
        self.config = config
        self.model = model
        self.hbm = hbm
        self.buffer = feature_buffer
        self.simd = SIMDUnit(config.simd_width * config.num_lanes)

    def run(
        self,
        graph: SemanticGraph,
        schedule: np.ndarray | None = None,
    ) -> StageReport:
        cfg = self.model.config
        report = StageReport(name="na")
        if graph.num_edges == 0:
            return report
        artifact = None
        if schedule is None:
            # Default schedule: reuse the graph's cached trace and
            # replay artifact (shared with every other consumer).
            schedule = graph.active_dst()
            trace = graph.na_trace()
            artifact = graph.na_replay()
        else:
            trace = gather_in_neighbors(graph.csc, schedule) + graph.src_global_base

        fvb = cfg.feature_vector_bytes
        before_hits = self.buffer.stats.hits
        misses, missed_ids = self.buffer.access_many(
            trace, collect_misses=True, artifact=artifact
        )
        report.buffer_hits = self.buffer.stats.hits - before_hits
        report.buffer_misses = misses

        # DRAM: one scatter feature fetch per miss, at the real vertex
        # addresses so the HBM model sees the true (lack of) row
        # locality of thrashing fetches.
        if misses:
            report.memory_cycles += self.hbm.access_features(missed_ids * fvb, fvb)
        report.dram_bytes_read += misses * fvb

        # Destination-side reads (attention needs h_dst for scoring);
        # destinations stream sequentially, one touch each.
        if self.model.projects_destinations:
            dst_bytes = len(schedule) * fvb
            report.memory_cycles += self.hbm.access_bulk(
                graph.dst_global_base * fvb, dst_bytes
            )
            report.dram_bytes_read += dst_bytes

        # Partial results live in the (small) output registers per lane;
        # finished aggregations write back once per destination.
        out_bytes = len(schedule) * fvb
        report.memory_cycles += self.hbm.access_bulk(
            graph.dst_global_base * fvb, out_bytes, write=True
        )
        report.dram_bytes_written += out_bytes

        flops = graph.num_edges * self.model.na_flops_per_edge()
        report.compute_cycles = (
            self.simd.elementwise_cycles(flops) + self.config.kernel_overhead_cycles
        )
        return report


class SFStageEngine:
    """Semantic fusion: element-wise combines on the SIMD module."""

    def __init__(self, config: HiHGNNConfig, model: HGNNModel, hbm: HBMModel) -> None:
        self.config = config
        self.model = model
        self.hbm = hbm
        self.simd = SIMDUnit(config.simd_width * config.num_lanes)

    def run(self, graph: SemanticGraph, num_relations_at_dst: int = 1) -> StageReport:
        cfg = self.model.config
        report = StageReport(name="sf")
        active_dst = len(graph.active_dst())
        if not active_dst:
            return report
        fvb = cfg.feature_vector_bytes
        flops = active_dst * self.model.sf_flops_per_vertex(num_relations_at_dst)
        flops //= max(num_relations_at_dst, 1)
        report.compute_cycles = (
            self.simd.elementwise_cycles(flops) + self.config.kernel_overhead_cycles
        )
        in_bytes = active_dst * fvb
        out_bytes = active_dst * fvb
        report.memory_cycles += self.hbm.access_bulk(
            graph.dst_global_base * fvb, in_bytes
        )
        report.memory_cycles += self.hbm.access_bulk(
            graph.dst_global_base * fvb, out_bytes, write=True
        )
        report.dram_bytes_read += in_bytes
        report.dram_bytes_written += out_bytes
        return report
