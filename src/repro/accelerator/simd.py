"""SIMD module timing model.

HiHGNN's SIMD module executes element-wise work: attention exponents and
normalization, weighted accumulation during NA, and the adds/activations
of SF. The model charges ``ceil(ops / width)`` cycles, with a
configurable cost multiplier for transcendental ops.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SIMDUnit"]


@dataclass(frozen=True)
class SIMDUnit:
    """A ``width``-lane fp32 SIMD unit.

    Attributes:
        width: lanes (elements per cycle).
        transcendental_cost: cycles one exp/div occupies relative to an
            add/mul (lookup-table implementations typically 2-4).
    """

    width: int
    transcendental_cost: int = 2

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("SIMD width must be positive")
        if self.transcendental_cost <= 0:
            raise ValueError("transcendental_cost must be positive")

    def elementwise_cycles(self, ops: int) -> int:
        """Cycles for ``ops`` simple element-wise operations."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return -(-ops // self.width)

    def transcendental_cycles(self, ops: int) -> int:
        """Cycles for ``ops`` exp/div/softmax-style operations."""
        return self.elementwise_cycles(ops) * self.transcendental_cost

    def reduction_cycles(self, length: int, vectors: int = 1) -> int:
        """Cycles to tree-reduce ``vectors`` arrays of ``length``."""
        if length <= 0:
            return 0
        per_vector = self.elementwise_cycles(length)
        # log-depth combine once lanes are saturated
        depth = max(1, (length - 1).bit_length())
        return vectors * (per_vector + depth)
