"""HiHGNN's similarity-aware semantic graph scheduling.

HiHGNN "strategically schedules the execution order of semantic graphs
based on their similarity to exploit data reusability": when two
consecutively executed semantic graphs share source vertices (same
source type), the second one finds those vertices' features already on
chip. The scheduler orders graphs greedily by pairwise similarity; the
lane assignment then balances per-lane work.
"""

from __future__ import annotations

import numpy as np

from repro.graph.semantic import SemanticGraph

__all__ = ["semantic_similarity", "similarity_schedule", "assign_lanes"]


def semantic_similarity(a: SemanticGraph, b: SemanticGraph) -> float:
    """Jaccard similarity of the active source-vertex feature sets.

    Graphs whose sources are different vertex types share nothing on
    chip, so their similarity is 0 regardless of local vertex ids;
    same-type graphs compare their active source sets.
    """
    if a.relation.src_type != b.relation.src_type:
        return 0.0
    src_a = a.active_src()
    src_b = b.active_src()
    if not len(src_a) or not len(src_b):
        return 0.0
    inter = len(np.intersect1d(src_a, src_b, assume_unique=True))
    union = len(src_a) + len(src_b) - inter
    return inter / union if union else 0.0


def similarity_schedule(graphs: list[SemanticGraph]) -> list[int]:
    """Greedy maximum-similarity chain over semantic graphs.

    Starts from the graph with the most edges (the best anchor for
    reuse) and repeatedly appends the unscheduled graph most similar to
    the last scheduled one.

    Returns:
        A permutation of ``range(len(graphs))`` giving execution order.
    """
    n = len(graphs)
    if n <= 1:
        return list(range(n))
    remaining = set(range(n))
    current = max(remaining, key=lambda i: graphs[i].num_edges)
    order = [current]
    remaining.discard(current)
    while remaining:
        best = max(
            remaining,
            key=lambda j: (semantic_similarity(graphs[order[-1]], graphs[j]), -j),
        )
        order.append(best)
        remaining.discard(best)
    return order


def assign_lanes(costs: list[int], num_lanes: int) -> tuple[list[int], int]:
    """Longest-processing-time assignment of per-graph costs to lanes.

    Args:
        costs: estimated cycles per semantic graph, in schedule order.
        num_lanes: available lanes.

    Returns:
        ``(lane_of_graph, makespan)`` -- the lane index each graph runs
        on, and the resulting makespan in cycles.
    """
    if num_lanes <= 0:
        raise ValueError("num_lanes must be positive")
    lane_load = [0] * num_lanes
    lane_of = [0] * len(costs)
    # Schedule order is fixed (similarity matters), so use greedy
    # earliest-available-lane rather than sorted LPT: consecutive
    # similar graphs still land back-to-back on the same lane only when
    # that lane frees up first, which mirrors HiHGNN's dispatcher.
    for idx, cost in enumerate(costs):
        lane = min(range(num_lanes), key=lambda l: lane_load[l])
        lane_of[idx] = lane
        lane_load[lane] += cost
    return lane_of, max(lane_load) if lane_load else 0
