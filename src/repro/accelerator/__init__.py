"""Cycle-approximate model of the HiHGNN accelerator.

HiHGNN (Xue et al., 2023) is the state-of-the-art HGNN accelerator the
paper bolts GDR-HGNN onto. The model reproduces the architectural
features the evaluation depends on:

- a **systolic array module** for matrix multiplication (FP stage and
  the dense half of attention),
- a **SIMD module** for element-wise work (NA accumulation, SF),
- a **multi-lane** organisation exploiting inter-semantic-graph
  parallelism,
- **similarity-aware scheduling** of semantic graphs for data reuse,
- the Table 3 buffer hierarchy, with the NA buffer simulated
  access-by-access so replacement counts (Fig. 2) and DRAM traffic
  (Fig. 8) are measured, not estimated.
"""

from repro.accelerator.config import HiHGNNConfig
from repro.accelerator.systolic import SystolicArray
from repro.accelerator.simd import SIMDUnit
from repro.accelerator.scheduler import similarity_schedule, semantic_similarity
from repro.accelerator.stages import StageReport, NAStageEngine
from repro.accelerator.hihgnn import HiHGNNSimulator, SimulationReport

__all__ = [
    "HiHGNNConfig",
    "SystolicArray",
    "SIMDUnit",
    "similarity_schedule",
    "semantic_similarity",
    "StageReport",
    "NAStageEngine",
    "HiHGNNSimulator",
    "SimulationReport",
]
