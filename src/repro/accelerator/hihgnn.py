"""Top-level HiHGNN simulator.

Drives the stage engines over all semantic graphs of a dataset:

1. SGB produces the semantic graphs (topology-only; the accelerator
   receives CSR topology from the host as in the paper).
2. The similarity scheduler orders them for reuse and the dispatcher
   assigns them to lanes.
3. Per graph, FP / NA / SF run back-to-back on the owning lane; the
   lane's NA buffer persists across graphs of the same source type and
   flushes otherwise.
4. Optionally, a :class:`~repro.restructure.GraphRestructurer` is
   applied to every semantic graph before NA (this models the *effect*
   of GDR-HGNN's restructuring; the frontend's own cycle cost and the
   pipelining live in :mod:`repro.frontend`).

Total time is the lane makespan; DRAM traffic, bandwidth utilization
and NA replacement statistics come from the shared HBM and per-lane
buffer models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.accelerator.config import HiHGNNConfig
from repro.accelerator.scheduler import assign_lanes, similarity_schedule
from repro.accelerator.stages import (
    FPStageEngine,
    InputProjectionEngine,
    NAStageEngine,
    SFStageEngine,
    StageReport,
)
from repro.graph.hetero import HeteroGraph
from repro.graph.semantic import SemanticGraph, build_semantic_graphs
from repro.memory.buffer import FeatureBuffer, replacement_histogram_from_counts
from repro.memory.dram import DRAMStats, HBMModel
from repro.models.base import ModelConfig
from repro.models.workload import get_model
from repro.restructure.restructure import GraphRestructurer

__all__ = ["SimulationReport", "HiHGNNSimulator"]


@dataclass
class SimulationReport:
    """Everything the evaluation section needs from one simulation."""

    platform: str
    model: str
    dataset: str
    total_cycles: int
    clock_ghz: float
    stage_totals: dict[str, StageReport]
    dram: DRAMStats
    na_replacement_histogram: dict[int, dict[str, float]]
    na_redundant_accesses: int
    na_hit_ratio: float
    frontend_cycles: int = 0
    lane_cycles: list[int] = field(default_factory=list)
    restructure_stats: dict[str, float] = field(default_factory=dict)
    graph_records: list[dict] = field(default_factory=list)

    @property
    def time_ms(self) -> float:
        return self.total_cycles / (self.clock_ghz * 1e9) * 1e3

    @property
    def dram_bytes(self) -> int:
        return self.dram.total_bytes

    @property
    def dram_accesses(self) -> int:
        return self.dram.accesses

    @property
    def bandwidth_utilization(self) -> float:
        """Achieved fraction of peak DRAM bandwidth over the run."""
        if self.total_cycles <= 0:
            return 0.0
        # peak bytes per cycle recorded via stage totals' clock context
        return self._bw_util

    _bw_util: float = 0.0

    def speedup_over(self, other: "SimulationReport") -> float:
        """How much faster this platform is than ``other`` (wall time)."""
        if self.time_ms <= 0:
            return float("inf")
        return other.time_ms / self.time_ms


class HiHGNNSimulator:
    """Cycle-approximate HiHGNN, optionally fed by graph restructuring."""

    def __init__(
        self,
        config: HiHGNNConfig | None = None,
        model_config: ModelConfig | None = None,
    ) -> None:
        self.config = config or HiHGNNConfig()
        self.model_config = model_config or ModelConfig()

    def run(
        self,
        graph: HeteroGraph,
        model_name: str,
        *,
        restructurer: GraphRestructurer | None = None,
        restructured: dict[str, "object"] | None = None,
        use_similarity_schedule: bool = True,
        semantic_graphs: list[SemanticGraph] | None = None,
        platform_name: str | None = None,
    ) -> SimulationReport:
        """Simulate one full inference pass.

        Args:
            graph: the heterogeneous graph (dataset).
            model_name: ``"rgcn"``, ``"rgat"`` or ``"simple_hgn"``.
            restructurer: when given, every semantic graph is decoupled
                and recoupled before NA (the GDR-HGNN data path). The
                frontend's own cycles are *not* charged here -- the
                pipelined system model in :mod:`repro.frontend` adds
                them.
            restructured: precomputed restructuring results keyed by
                ``str(relation)`` (the :class:`GDRHGNNSystem` path,
                which must not re-run the algorithm it already paid
                frontend cycles for). Mutually exclusive with
                ``restructurer``.
            use_similarity_schedule: HiHGNN's similarity scheduling
                (disable for ablations).
            semantic_graphs: pre-built SGB output to reuse across runs.
            platform_name: label for reports.

        Returns:
            A :class:`SimulationReport`.
        """
        cfg = self.config
        model = get_model(model_name, self.model_config)
        fvb = model.config.feature_vector_bytes

        if semantic_graphs is None:
            semantic_graphs = build_semantic_graphs(graph)
        if use_similarity_schedule:
            order = similarity_schedule(semantic_graphs)
        else:
            order = list(range(len(semantic_graphs)))
        ordered = [semantic_graphs[i] for i in order]

        relations_at_dst: dict[str, int] = {}
        for sg in semantic_graphs:
            dst = sg.relation.dst_type
            relations_at_dst[dst] = relations_at_dst.get(dst, 0) + 1

        hbm = HBMModel(cfg.hbm)
        lane_buffers = [
            FeatureBuffer(cfg.lane_na_src_bytes, fvb, name=f"na-lane{lane}")
            for lane in range(cfg.num_lanes)
        ]
        fp_engine = FPStageEngine(cfg, model, hbm)
        sf_engine = SFStageEngine(cfg, model, hbm)
        na_engines = [
            NAStageEngine(cfg, model, hbm, buffer) for buffer in lane_buffers
        ]

        # Lane assignment from a static work proxy (edges dominate).
        cost_proxy = [
            sg.num_edges * model.na_flops_per_edge()
            + len(sg.active_src()) * (sg.src_feature_dim or 64)
            for sg in ordered
        ]
        lane_of, _ = assign_lanes(cost_proxy, cfg.num_lanes)

        stage_totals = {
            "ip": StageReport("ip"),
            "fp": StageReport("fp"),
            "na": StageReport("na"),
            "sf": StageReport("sf"),
        }

        # Prologue: once-per-type input projection (raw -> embed).
        # Each type's projection is one dense GEMM spread over all
        # lanes, so types run back-to-back ahead of the semantic-graph
        # pipeline.
        ip_engine = InputProjectionEngine(cfg, model, hbm)
        ip_makespan = 0
        for vtype in graph.vertex_types:
            ip_report = ip_engine.run(
                graph.num_vertices(vtype),
                graph.feature_dim(vtype) or model.config.embed_dim,
                graph.type_offset(vtype),
            )
            stage_totals["ip"].merge(ip_report)
            ip_makespan += ip_report.elapsed_cycles
        lane_cycles = [0] * cfg.num_lanes
        lane_prev: list[SemanticGraph | None] = [None] * cfg.num_lanes
        graph_records: list[dict] = []
        restructure_stats = {
            "graphs": 0.0,
            "subgraphs": 0.0,
            "backbone_vertices": 0.0,
            "matching_size": 0.0,
        }

        for idx, sg in enumerate(ordered):
            lane = lane_of[idx]
            buffer = lane_buffers[lane]
            previous = lane_prev[lane]
            if previous is None or previous.relation.src_type != sg.relation.src_type:
                buffer.flush()

            fp_report = fp_engine.run(sg, previous=previous)

            result = None
            if restructured is not None:
                result = restructured.get(str(sg.relation))
            elif restructurer is not None:
                result = restructurer.restructure(sg)
            if result is not None:
                leaves = result.leaves()
                restructure_stats["graphs"] += 1
                restructure_stats["subgraphs"] += len(leaves)
                restructure_stats["backbone_vertices"] += result.backbone_size
                restructure_stats["matching_size"] += result.matching.size
            else:
                leaves = [(sg, None)]

            na_report = StageReport("na")
            for sub, schedule in leaves:
                na_report.merge(na_engines[lane].run(sub, schedule))

            sf_report = sf_engine.run(
                sg, num_relations_at_dst=relations_at_dst[sg.relation.dst_type]
            )

            # HiHGNN pipelines the FP/NA/SF engines: while NA aggregates
            # graph k, FP already projects graph k+1 on the same lane.
            # Steady-state lane throughput is therefore the bottleneck
            # stage; the pipeline fill (one FP) and drain (one SF) are
            # exposed once per lane.
            stage_cycles = (
                fp_report.elapsed_cycles,
                na_report.elapsed_cycles,
                sf_report.elapsed_cycles,
            )
            graph_cycles = max(stage_cycles)
            if lane_prev[lane] is None:
                graph_cycles += fp_report.elapsed_cycles + sf_report.elapsed_cycles
            lane_cycles[lane] += graph_cycles
            graph_records.append(
                {
                    "relation": str(sg.relation),
                    "lane": lane,
                    "cycles": graph_cycles,
                    "edges": sg.num_edges,
                }
            )
            stage_totals["fp"].merge(fp_report)
            stage_totals["na"].merge(na_report)
            stage_totals["sf"].merge(sf_report)
            lane_prev[lane] = sg

        total_cycles = (max(lane_cycles) if lane_cycles else 0) + ip_makespan

        merged_ids, merged_counts = _merge_fetch_arrays(lane_buffers)
        histogram = replacement_histogram_from_counts(merged_counts)
        redundant = int(merged_counts.sum() - len(merged_counts))
        na_total = stage_totals["na"]
        na_accesses = na_total.buffer_hits + na_total.buffer_misses
        na_hit_ratio = na_total.buffer_hits / na_accesses if na_accesses else 0.0

        report = SimulationReport(
            platform=platform_name
            or (
                "hihgnn+gdr"
                if restructurer is not None or restructured is not None
                else "hihgnn"
            ),
            model=model.name,
            dataset=graph.name,
            total_cycles=total_cycles,
            clock_ghz=cfg.clock_ghz,
            stage_totals=stage_totals,
            dram=hbm.stats,
            na_replacement_histogram=histogram,
            na_redundant_accesses=redundant,
            na_hit_ratio=na_hit_ratio,
            lane_cycles=lane_cycles,
            restructure_stats=restructure_stats,
            graph_records=graph_records,
        )
        report._bw_util = (
            min(1.0, hbm.stats.total_bytes / (cfg.hbm.peak_bytes_per_cycle * total_cycles))
            if total_cycles
            else 0.0
        )
        return report


def _merge_fetch_arrays(
    buffers: list[FeatureBuffer],
) -> tuple[np.ndarray, np.ndarray]:
    """Merge per-lane ``(ids, counts)`` fetch ledgers into one."""
    parts = [buf.fetch_arrays() for buf in buffers]
    ids = np.concatenate([p[0] for p in parts]) if parts else np.empty(0, np.int64)
    counts = (
        np.concatenate([p[1] for p in parts]) if parts else np.empty(0, np.int64)
    )
    if not len(ids):
        return ids, counts
    uniq, inv = np.unique(ids, return_inverse=True)
    totals = np.zeros(len(uniq), dtype=np.int64)
    np.add.at(totals, inv, counts)
    return uniq, totals
