"""HiHGNN platform adapter: the bare accelerator as a registry entry."""

from __future__ import annotations

from repro.accelerator.hihgnn import HiHGNNSimulator, SimulationReport
from repro.platforms.base import DatasetArtifacts, Platform
from repro.platforms.registry import register_platform

__all__ = ["HiHGNNPlatform"]


@register_platform("hihgnn")
class HiHGNNPlatform(Platform):
    """Cycle-approximate HiHGNN without the GDR-HGNN frontend.

    ``simulate`` forwards extra keyword arguments (``restructurer``,
    ``use_similarity_schedule``, ...) to
    :meth:`repro.accelerator.hihgnn.HiHGNNSimulator.run`, which is how
    the thrashing analysis profiles restructured-but-uncharged
    executions through the same platform entry.
    """

    def simulate(
        self, model_name: str, artifacts: DatasetArtifacts, **kwargs
    ) -> SimulationReport:
        simulator = HiHGNNSimulator(
            self.context.accelerator, self.context.model_config
        )
        report = simulator.run(
            artifacts.graph,
            model_name,
            semantic_graphs=artifacts.semantic_graphs,
            **kwargs,
        )
        if "restructurer" in kwargs or "restructured" in kwargs:
            # Restructured profiling runs keep the simulator's own
            # "hihgnn+gdr" label (the thrashing --gdr path).
            return report
        return self._labelled(report)

    def digest_sources(self) -> tuple:
        return (self.context.accelerator, self.context.model_config)
