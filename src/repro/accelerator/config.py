"""HiHGNN platform configuration (Table 3)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.dram import HBMConfig

__all__ = ["HiHGNNConfig"]

MB = 1 << 20
KB = 1 << 10


@dataclass(frozen=True)
class HiHGNNConfig:
    """Architectural parameters of HiHGNN as given in Table 3.

    Attributes:
        clock_ghz: accelerator clock (1.0 GHz).
        peak_tflops: peak throughput (16.38 TFLOPS), implying
            ``peak_tflops * 1000 / clock_ghz`` FLOPs per cycle across
            all lanes.
        num_lanes: parallel lanes exploiting inter-semantic-graph
            parallelism (HiHGNN's multi-lane architecture).
        systolic_rows/cols: one lane's systolic array shape; the default
            128 x 16 array x 4 lanes x 2 FLOPs/MAC = 16384 FLOPs/cycle,
            matching the stated peak.
        simd_width: one lane's SIMD width in fp32 lanes.
        fp_buffer_bytes: FP result buffer (2.44 MB).
        na_buffer_bytes: NA feature buffer (14.52 MB) -- the buffer
            whose thrashing the paper attacks.
        sf_buffer_bytes: SF/SA buffer (0.12 MB).
        att_buffer_bytes: attention buffer (0.38 MB).
        hbm: HBM 1.0 configuration (512 GB/s at 1 GHz = 512 B/cycle).
        kernel_overhead_cycles: fixed per-stage launch/drain overhead of
            one stage invocation on one semantic graph.
        na_src_fraction: share of a lane's NA buffer available for
            source features; the rest holds in-flight destination
            partial aggregations (HiHGNN keeps both in the NA buffer).
    """

    clock_ghz: float = 1.0
    peak_tflops: float = 16.38
    num_lanes: int = 4
    systolic_rows: int = 128
    systolic_cols: int = 16
    simd_width: int = 64
    fp_buffer_bytes: int = int(2.44 * MB)
    na_buffer_bytes: int = int(14.52 * MB)
    sf_buffer_bytes: int = int(0.12 * MB)
    att_buffer_bytes: int = int(0.38 * MB)
    hbm: HBMConfig = field(default_factory=HBMConfig)
    kernel_overhead_cycles: int = 64
    na_src_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.num_lanes <= 0:
            raise ValueError("num_lanes must be positive")
        if min(self.systolic_rows, self.systolic_cols, self.simd_width) <= 0:
            raise ValueError("datapath dimensions must be positive")

    @property
    def flops_per_cycle(self) -> int:
        """Peak FLOPs per cycle over all lanes (2 per MAC)."""
        return self.num_lanes * self.systolic_rows * self.systolic_cols * 2

    @property
    def lane_na_buffer_bytes(self) -> int:
        """Nominal per-lane NA buffer share (capacity accounting)."""
        return self.na_buffer_bytes // self.num_lanes

    @property
    def lane_na_src_bytes(self) -> int:
        """Source-feature capacity available to one lane's NA stream.

        The NA buffer is a pooled resource: HiHGNN allocates it to
        whichever lanes are in their NA phase, and NA phases of
        different lanes rarely align (graph sizes differ widely), so a
        lane's NA stream sees the full source-feature share rather
        than a static 1/num_lanes slice.
        """
        if not 0.0 < self.na_src_fraction <= 1.0:
            raise ValueError("na_src_fraction must be in (0, 1]")
        return int(self.na_buffer_bytes * self.na_src_fraction)

    @property
    def lane_fp_buffer_bytes(self) -> int:
        return self.fp_buffer_bytes // self.num_lanes

    @property
    def cycles_per_second(self) -> float:
        return self.clock_ghz * 1e9

    def cycles_to_ms(self, cycles: int) -> float:
        """Convert a cycle count to milliseconds at the configured clock."""
        return cycles / self.cycles_per_second * 1e3
