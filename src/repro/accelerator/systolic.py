"""Systolic array timing model.

HiHGNN's systolic array executes the dense matrix work: the FP stage's
feature projections and the matrix-vector halves of attention scoring.
The model is an output-stationary tiling with double-buffered operand
feeds: an ``R x C`` array computes an ``R x C`` output tile in ``K``
cycles once the pipeline is primed, and the ``R + C`` fill/drain is
paid once per GEMM (tile transitions overlap with streaming). A
``(M, K) @ (K, N)`` product therefore takes
``ceil(M/R) * ceil(N/C) * K + R + C`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystolicArray"]


@dataclass(frozen=True)
class SystolicArray:
    """An ``rows x cols`` MAC array clocked once per cycle.

    Attributes:
        rows: PE rows (output tile height).
        cols: PE columns (output tile width).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")

    @property
    def macs_per_cycle(self) -> int:
        return self.rows * self.cols

    def gemm_cycles(self, m: int, k: int, n: int) -> int:
        """Cycles for a dense ``(m, k) @ (k, n)`` product.

        Zero-sized problems take zero cycles.
        """
        if min(m, k, n) < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if m == 0 or k == 0 or n == 0:
            return 0
        tiles_m = -(-m // self.rows)
        tiles_n = -(-n // self.cols)
        return tiles_m * tiles_n * k + self.rows + self.cols

    def gemm_utilization(self, m: int, k: int, n: int) -> float:
        """Achieved MAC utilization of the product (1.0 = fully packed)."""
        cycles = self.gemm_cycles(m, k, n)
        if cycles == 0:
            return 0.0
        ideal = m * k * n / self.macs_per_cycle
        return min(1.0, ideal / cycles)

    def gemv_cycles(self, k: int, n: int) -> int:
        """Matrix-vector product ``(1, k) @ (k, n)`` (one output row)."""
        return self.gemm_cycles(1, k, n)
